"""ModelRegistry: versioned publishing, latest pointer, validation."""

from __future__ import annotations

import pytest

from repro.registry import (
    ModelRegistry,
    PredictorArtifact,
    RegistryError,
    parse_ref,
    save_artifact,
)
from repro.registry.artifact import WEIGHTS_NAME
from repro.serving import PredictionService


class TestPublishing:
    def test_versions_increment_and_latest_tracks(self, trained_predictors,
                                                  tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        predictor = trained_predictors["dnn"]
        first = registry.publish(predictor, "dnn")
        second = registry.publish(predictor, "dnn")
        assert (first.version, second.version) == ("v0001", "v0002")
        assert registry.versions("dnn") == ["v0001", "v0002"]
        assert registry.latest("dnn") == "v0002"
        assert registry.resolve("dnn") == second.path

    def test_latest_fallback_skips_ghost_versions(self, trained_predictors,
                                                  tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(trained_predictors["dnn"], "dnn")
        # A manifest-less version dir (interrupted manual copy) plus a
        # lost pointer: the fallback must land on the loadable version.
        (tmp_path / "reg" / "dnn" / "v0002").mkdir()
        (tmp_path / "reg" / "dnn" / "LATEST").unlink()
        assert registry.latest("dnn") == "v0001"
        assert registry.resolve("dnn").name == "v0001"

    def test_set_latest_rollback(self, trained_predictors, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        predictor = trained_predictors["dnn"]
        registry.publish(predictor, "dnn")
        registry.publish(predictor, "dnn")
        registry.set_latest("dnn", "v0001")
        assert registry.latest("dnn") == "v0001"
        with pytest.raises(RegistryError):
            registry.set_latest("dnn", "v9999")

    def test_import_existing_artifact(self, trained_predictors, tmp_path):
        source = tmp_path / "exported"
        save_artifact(trained_predictors["dnn"], source)
        registry = ModelRegistry(tmp_path / "reg")
        entry = registry.import_artifact(source, "imported")
        assert entry.version == "v0001"
        assert registry.load("imported").model_name == "dnn"

    def test_import_rejects_corrupt_source(self, trained_predictors,
                                           tmp_path):
        from repro.registry import ArtifactIntegrityError
        from repro.registry.artifact import WEIGHTS_NAME as weights_name

        source = tmp_path / "exported"
        save_artifact(trained_predictors["dnn"], source)
        blob = bytearray((source / weights_name).read_bytes())
        blob[11] ^= 0xFF
        (source / weights_name).write_bytes(bytes(blob))
        registry = ModelRegistry(tmp_path / "reg")
        with pytest.raises(ArtifactIntegrityError, match="checksum"):
            registry.import_artifact(source, "imported")
        # Nothing half-published: LATEST must never point at a bad bundle.
        assert registry.models() == []

    def test_invalid_name_rejected(self, trained_predictors, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        with pytest.raises(RegistryError, match="invalid model name"):
            registry.publish(trained_predictors["dnn"], "../escape")

    def test_missing_model_errors(self, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        assert registry.models() == []
        with pytest.raises(RegistryError, match="no published versions"):
            registry.resolve("ghost")

    def test_publish_commits_atomically(self, trained_predictors, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(trained_predictors["dnn"], "dnn")
        # No staging leftovers: only the committed version and the pointer
        # (plus dotted bookkeeping files no reader ever matches).
        contents = sorted(p.name for p in (tmp_path / "reg" / "dnn").iterdir()
                          if not p.name.startswith("."))
        assert contents == ["LATEST", "v0001"]

    def test_half_written_staging_is_invisible(self, trained_predictors,
                                               tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(trained_predictors["dnn"], "dnn")
        # Simulate a crash mid-publish: a staging dir that never committed.
        (tmp_path / "reg" / "dnn" / ".staging-v0002" / "weights.npz"
         ).parent.mkdir()
        assert registry.versions("dnn") == ["v0001"]
        assert registry.latest("dnn") == "v0001"
        assert registry.validate() == []

    def test_failed_publish_leaves_no_trace(self, trained_predictors,
                                            tmp_path, monkeypatch):
        import repro.registry.registry as registry_module

        registry = ModelRegistry(tmp_path / "reg")

        def boom(*args, **kwargs):
            raise RuntimeError("training artifacts unavailable")

        monkeypatch.setattr(registry_module, "save_artifact", boom)
        with pytest.raises(RuntimeError):
            registry.publish(trained_predictors["dnn"], "dnn")
        # No phantom model with zero versions, no staging litter.
        assert registry.models() == []
        assert not (tmp_path / "reg" / "dnn").exists()

    def test_validate_rejects_malformed_version_ref(self, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        problems = registry.validate("x", "../../etc")
        assert problems == \
            ["x@../../etc: invalid version (expected the form v0001)"]

    def test_publish_pointer_never_moves_backwards(self, trained_predictors,
                                                   tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(trained_predictors["dnn"], "dnn")
        registry.publish(trained_predictors["dnn"], "dnn")
        assert registry.latest("dnn") == "v0002"
        # A stalled publisher's late pointer write must not roll back.
        registry._advance_latest("dnn", "v0001")
        assert registry.latest("dnn") == "v0002"
        # Explicit operator rollback remains available.
        registry.set_latest("dnn", "v0001")
        assert registry.latest("dnn") == "v0001"

    def test_commit_preserves_staging_on_io_error(self, trained_predictors,
                                                  tmp_path, monkeypatch):
        import errno
        from pathlib import Path

        registry = ModelRegistry(tmp_path / "reg")
        staging = registry._stage("dnn", "v0001")
        staging.mkdir()
        (staging / "weights").write_text("the only copy")

        def out_of_space(self, target):
            raise OSError(errno.ENOSPC, "no space left on device")

        monkeypatch.setattr(Path, "rename", out_of_space)
        with pytest.raises(OSError, match="no space"):
            registry._commit("dnn", "v0001", staging)
        monkeypatch.undo()
        # A real I/O failure must not be misread as a version collision —
        # the staged bundle (the only copy of the artifact) survives.
        assert (staging / "weights").read_text() == "the only copy"

    def test_concurrent_publish_version_collision(self, trained_predictors,
                                                  tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(trained_predictors["dnn"], "dnn")
        # Simulate a racing publisher that computed the same next version:
        # its staging is private, and its commit loses cleanly.
        staging = registry._stage("dnn", "v0001")
        staging.mkdir()
        (staging / "partial").write_text("x")
        with pytest.raises(RegistryError, match="already exists"):
            registry._commit("dnn", "v0001", staging)
        assert not staging.exists()
        assert registry.validate() == []

    def test_version_ordering_is_numeric(self, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        for version in ("v9999", "v10000"):
            (tmp_path / "reg" / "m" / version).mkdir(parents=True)
        assert registry.versions("m") == ["v9999", "v10000"]
        assert registry._next_version("m") == "v10001"


class TestResolution:
    def test_entries_and_manifest_fields(self, trained_predictors, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(trained_predictors["dnn"], "dnn",
                         provenance={"scale": "tiny"})
        registry.publish(trained_predictors["snn"], "snn")
        entries = list(registry.entries())
        assert [(e.name, e.version) for e in entries] == \
            [("dnn", "v0001"), ("snn", "v0001")]
        assert entries[0].model_name == "dnn"
        assert entries[0].provenance["scale"] == "tiny"
        assert entries[0].n_parameters > 0

    def test_load_serves(self, trained_predictors, reg_world, reg_collection,
                         tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(trained_predictors["dnn"], "dnn")
        artifact = registry.load("dnn")
        assert isinstance(artifact, PredictorArtifact)
        service = PredictionService.from_artifact(
            artifact, reg_world, reg_collection.dataset
        )
        channel = next(iter(artifact.channel_index))
        assert service.knows_channel(channel)

    def test_resolve_rejects_malformed_version(self, trained_predictors,
                                               tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(trained_predictors["dnn"], "dnn")
        for bad in ("../../elsewhere", ".staging-v0002-x", "latest!", "v1"):
            with pytest.raises(RegistryError, match="invalid version"):
                registry.resolve("dnn", bad)

    def test_parse_ref(self):
        assert parse_ref("snn") == ("snn", None)
        assert parse_ref("snn@latest") == ("snn", None)
        assert parse_ref("snn@v0002") == ("snn", "v0002")


class TestValidation:
    def test_clean_registry_validates(self, trained_predictors, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(trained_predictors["dnn"], "dnn")
        registry.publish(trained_predictors["snn"], "snn")
        assert registry.validate() == []

    def test_tampering_detected(self, trained_predictors, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        entry = registry.publish(trained_predictors["dnn"], "dnn")
        weights = entry.path / WEIGHTS_NAME
        blob = bytearray(weights.read_bytes())
        blob[10] ^= 0xFF
        weights.write_bytes(bytes(blob))
        problems = registry.validate()
        assert len(problems) == 1
        assert "checksum mismatch" in problems[0]

    def test_unknown_model_reported(self, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        assert registry.validate("ghost") == \
            ["model 'ghost' has no published versions"]

    def test_dangling_latest_with_no_versions_left(self, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        model_dir = tmp_path / "reg" / "snn"
        model_dir.mkdir(parents=True)
        (model_dir / "LATEST").write_text("v0001\n")
        problems = registry.validate()
        assert problems == ["snn: LATEST points at missing version 'v0001'"]

    def test_dangling_latest_reported_despite_broken_bundle(
            self, trained_predictors, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        entry = registry.publish(trained_predictors["dnn"], "dnn")
        (entry.path / "manifest.json").write_text("{ not json")
        (tmp_path / "reg" / "dnn" / "LATEST").write_text("v0099\n")
        problems = registry.validate()
        assert any("LATEST points at missing" in p for p in problems)
        assert any("not valid JSON" in p for p in problems)
