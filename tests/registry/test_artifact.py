"""Artifact round-trips: save → load → bit-for-bit identical serving.

The train/serve contract (ISSUE 3): an artifact reconstructs a predictor
whose scores are exactly — not approximately — those of the in-memory
predictor it was saved from, for every ranker family; schema drift,
tampering and truncation fail loudly before any score is produced.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import evaluate_scores, predict_scores
from repro.core.predictor import RankRequest
from repro.registry import (
    ArtifactError,
    ArtifactIntegrityError,
    ArtifactSchemaError,
    PredictorArtifact,
    SCHEMA_VERSION,
    load_artifact,
    load_predictor,
    save_artifact,
)
from repro.registry.artifact import MANIFEST_NAME, STATE_NAME, WEIGHTS_NAME

ARCHES = ("snn", "dnn", "gru", "tcn")


def _test_requests(dataset, count=2):
    """(channel, exchange, time) of the first test-split ranking lists."""
    seen, requests = set(), []
    for example in dataset.examples:
        if example.split != "test" or example.list_id in seen:
            continue
        seen.add(example.list_id)
        requests.append(RankRequest(example.channel_id, 0, example.time))
        if len(requests) == count:
            break
    return requests


@pytest.mark.parametrize("arch", ARCHES)
class TestRoundTrip:
    def test_rank_scores_bit_for_bit(self, arch, trained_predictors,
                                     reg_world, reg_collection, tmp_path):
        predictor = trained_predictors[arch]
        save_artifact(predictor, tmp_path / arch)
        rebuilt = load_predictor(tmp_path / arch, reg_world,
                                 reg_collection.dataset)
        request = _test_requests(reg_collection.dataset, count=1)[0]
        original = predictor.rank(request.channel_id, 0, request.pump_time)
        reloaded = rebuilt.rank(request.channel_id, 0, request.pump_time)
        assert [s.coin_id for s in original.scores] == \
            [s.coin_id for s in reloaded.scores]
        assert [s.probability for s in original.scores] == \
            [s.probability for s in reloaded.scores]

    def test_rank_many_bit_for_bit(self, arch, trained_predictors,
                                   reg_world, reg_collection, tmp_path):
        predictor = trained_predictors[arch]
        save_artifact(predictor, tmp_path / arch)
        rebuilt = load_predictor(tmp_path / arch, reg_world,
                                 reg_collection.dataset)
        requests = _test_requests(reg_collection.dataset, count=2)
        for original, reloaded in zip(predictor.rank_many(requests),
                                      rebuilt.rank_many(requests)):
            assert [(s.coin_id, s.probability) for s in original.scores] == \
                [(s.coin_id, s.probability) for s in reloaded.scores]

    def test_hr_at_k_identical(self, arch, trained_predictors, reg_world,
                               reg_collection, reg_assembled, tmp_path):
        predictor = trained_predictors[arch]
        save_artifact(predictor, tmp_path / arch)
        rebuilt = load_predictor(tmp_path / arch, reg_world,
                                 reg_collection.dataset)
        original = predict_scores(predictor.model, reg_assembled.test)
        reloaded = predict_scores(rebuilt.model, reg_assembled.test)
        assert np.array_equal(original, reloaded)
        assert evaluate_scores(reg_assembled.test, original) == \
            evaluate_scores(reg_assembled.test, reloaded)


class TestArtifactContents:
    @pytest.fixture()
    def saved(self, trained_predictors, tmp_path):
        predictor = trained_predictors["dnn"]
        path = tmp_path / "dnn"
        save_artifact(predictor, path, provenance={"note": "unit-test"})
        return predictor, path

    def test_bundle_layout(self, saved):
        _, path = saved
        assert (path / MANIFEST_NAME).is_file()
        assert (path / WEIGHTS_NAME).is_file()
        assert (path / STATE_NAME).is_file()
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["model"]["name"] == "dnn"
        assert set(manifest["files"]) == {WEIGHTS_NAME, STATE_NAME}

    def test_scalers_restored_exactly(self, saved):
        predictor, path = saved
        artifact = load_artifact(path)
        assert np.array_equal(artifact.numeric_scaler.mean_,
                              predictor._numeric_scaler.mean_)
        assert np.array_equal(artifact.numeric_scaler.std_,
                              predictor._numeric_scaler.std_)
        assert np.array_equal(artifact.seq_scaler.mean_,
                              predictor._seq_scaler.mean_)

    def test_provenance_and_summary(self, saved):
        _, path = saved
        artifact = load_artifact(path)
        assert artifact.provenance["note"] == "unit-test"
        summary = artifact.summary()
        assert summary["model"] == "dnn"
        assert summary["provenance.note"] == "unit-test"

    def test_save_refuses_unrelated_directory(self, trained_predictors,
                                              tmp_path):
        target = tmp_path / "precious"
        target.mkdir()
        (target / "data.txt").write_text("not an artifact")
        with pytest.raises(ArtifactError, match="refusing to overwrite"):
            save_artifact(trained_predictors["dnn"], target)
        assert (target / "data.txt").read_text() == "not an artifact"

    def test_save_refuses_foreign_manifest_dir(self, trained_predictors,
                                               tmp_path):
        # A directory with someone else's manifest.json (e.g. a browser
        # extension) is NOT replaceable — kind marker must match.
        target = tmp_path / "webext"
        target.mkdir()
        (target / "manifest.json").write_text('{"manifest_version": 3}')
        (target / "background.js").write_text("// precious")
        with pytest.raises(ArtifactError, match="refusing to overwrite"):
            save_artifact(trained_predictors["dnn"], target)
        assert (target / "background.js").read_text() == "// precious"

    def test_save_into_empty_directory(self, trained_predictors, tmp_path):
        target = tmp_path / "empty"
        target.mkdir()
        save_artifact(trained_predictors["dnn"], target)
        assert (target / MANIFEST_NAME).is_file()

    def test_to_artifact_snapshots_scalers(self, trained_predictors):
        predictor = trained_predictors["dnn"]
        artifact = predictor.to_artifact()
        assert artifact.numeric_scaler.mean_ is not \
            predictor._numeric_scaler.mean_
        original = artifact.numeric_scaler.mean_.copy()
        predictor._numeric_scaler.mean_ += 1.0
        try:
            assert np.array_equal(artifact.numeric_scaler.mean_, original)
        finally:
            predictor._numeric_scaler.mean_ -= 1.0  # session-scoped fixture

    def test_resave_over_existing_artifact(self, trained_predictors,
                                           tmp_path):
        # Re-saving replaces the bundle whole (staged + renamed): the
        # result loads cleanly and no temp directories are left behind.
        predictor = trained_predictors["dnn"]
        path = tmp_path / "dnn"
        save_artifact(predictor, path, provenance={"run": 1})
        save_artifact(predictor, path, provenance={"run": 2})
        assert load_artifact(path).provenance["run"] == 2
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "dnn"]
        assert leftovers == []

    def test_to_artifact_from_artifact_pair(self, trained_predictors,
                                            reg_world, reg_collection):
        from repro.core import TargetCoinPredictor

        predictor = trained_predictors["snn"]
        artifact = predictor.to_artifact(provenance={"via": "method"})
        assert isinstance(artifact, PredictorArtifact)
        rebuilt = TargetCoinPredictor.from_artifact(
            artifact, reg_world, reg_collection.dataset
        )
        request = _test_requests(reg_collection.dataset, count=1)[0]
        assert [s.probability
                for s in predictor.rank(request.channel_id, 0,
                                        request.pump_time).scores] == \
            [s.probability
             for s in rebuilt.rank(request.channel_id, 0,
                                   request.pump_time).scores]


class TestFailureModes:
    @pytest.fixture()
    def saved(self, trained_predictors, tmp_path):
        path = tmp_path / "dnn"
        save_artifact(trained_predictors["dnn"], path)
        return path

    def test_schema_mismatch_rejected(self, saved):
        manifest = json.loads((saved / MANIFEST_NAME).read_text())
        manifest["schema_version"] = SCHEMA_VERSION + 99
        (saved / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactSchemaError, match="schema"):
            load_artifact(saved)

    def test_tampered_weights_rejected(self, saved):
        blob = bytearray((saved / WEIGHTS_NAME).read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        (saved / WEIGHTS_NAME).write_bytes(bytes(blob))
        with pytest.raises(ArtifactIntegrityError, match="checksum"):
            load_artifact(saved)

    def test_truncated_weights_rejected(self, saved):
        blob = (saved / WEIGHTS_NAME).read_bytes()
        (saved / WEIGHTS_NAME).write_bytes(blob[: len(blob) // 2])
        with pytest.raises(ArtifactIntegrityError):
            load_artifact(saved)

    def test_out_of_tree_files_entry_rejected(self, saved):
        # A crafted entry must not point the checksum walk outside the
        # artifact directory (hash oracle on arbitrary readable files).
        manifest = json.loads((saved / MANIFEST_NAME).read_text())
        manifest["files"]["../../../etc/hostname"] = {"sha256": "00" * 32}
        (saved / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactIntegrityError,
                           match="not a plain file name"):
            load_artifact(saved)

    def test_malformed_files_entry_rejected(self, saved):
        manifest = json.loads((saved / MANIFEST_NAME).read_text())
        manifest["files"]["evil"] = "notadict"
        (saved / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactIntegrityError, match="malformed"):
            load_artifact(saved)

    def test_checksum_consistent_garbage_npz_rejected(self, saved):
        # A hand edit can update the recorded sha256 alongside the file
        # (the manifest is unchecksummed); parsing must still fail inside
        # the taxonomy, not with a raw BadZipFile traceback.
        import hashlib

        (saved / STATE_NAME).write_bytes(b"not an npz archive")
        manifest = json.loads((saved / MANIFEST_NAME).read_text())
        manifest["files"][STATE_NAME]["sha256"] = hashlib.sha256(
            b"not an npz archive"
        ).hexdigest()
        (saved / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactIntegrityError, match="cannot be read"):
            load_artifact(saved)

    def test_missing_file_rejected(self, saved):
        (saved / STATE_NAME).unlink()
        with pytest.raises(ArtifactIntegrityError, match="missing"):
            load_artifact(saved)

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ArtifactError):
            load_artifact(tmp_path / "nope")

    def test_structurally_incomplete_manifest_rejected(self, saved):
        manifest = json.loads((saved / MANIFEST_NAME).read_text())
        del manifest["model"]
        (saved / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactIntegrityError,
                           match="structurally"):
            load_artifact(saved)

    def test_malformed_config_content_rejected(self, saved):
        # Structurally present but content-tampered: still a diagnostic,
        # never a raw KeyError/TypeError traceback.
        manifest = json.loads((saved / MANIFEST_NAME).read_text())
        del manifest["model"]["config"]["hidden_dims"]
        (saved / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactIntegrityError, match="malformed content"):
            load_artifact(saved)

    def test_unknown_model_name_rejected(self, saved):
        manifest = json.loads((saved / MANIFEST_NAME).read_text())
        manifest["model"]["name"] = "resnet"
        (saved / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactIntegrityError, match="model.name"):
            load_artifact(saved)

    def test_unknown_config_key_rejected(self, saved):
        manifest = json.loads((saved / MANIFEST_NAME).read_text())
        manifest["model"]["config"]["not_a_field"] = 1
        (saved / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactIntegrityError, match="malformed content"):
            load_artifact(saved)

    def test_dropped_files_section_rejected(self, saved):
        # Emptying the checksum table must not silently disable tamper
        # protection: it is itself an integrity failure.
        manifest = json.loads((saved / MANIFEST_NAME).read_text())
        del manifest["files"]
        (saved / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactIntegrityError,
                           match="structurally"):
            load_artifact(saved)

    def test_bare_weights_npz_rejected_with_hint(self, trained_predictors,
                                                 tmp_path):
        from repro.nn.serialize import save_module

        path = tmp_path / "bare.npz"
        save_module(trained_predictors["dnn"].model, path)
        with pytest.raises(ArtifactError, match="bare-weights"):
            load_artifact(path)

    def test_vocabulary_drift_rejected(self, saved, reg_world,
                                       reg_collection):
        artifact = load_artifact(saved)
        dropped = next(iter(artifact.channel_index))
        del artifact.channel_index[dropped]
        with pytest.raises(ArtifactError, match="vocabulary drift"):
            artifact.to_predictor(reg_world, reg_collection.dataset)

    def test_tampered_subscribers_rejected(self, saved, reg_world,
                                           reg_collection):
        # Subscribers feed the channel feature directly: manifest drift
        # must be a diagnostic, never silently different scores.
        manifest = json.loads((saved / MANIFEST_NAME).read_text())
        key = next(iter(manifest["features"]["subscribers"]))
        manifest["features"]["subscribers"][key] += 999
        (saved / MANIFEST_NAME).write_text(json.dumps(manifest))
        artifact = load_artifact(saved)
        with pytest.raises(ArtifactError, match="subscriber"):
            artifact.to_predictor(reg_world, reg_collection.dataset)


class TestLegacySerialize:
    def test_load_module_warns_on_bare_archive(self, trained_predictors,
                                               tmp_path):
        from repro.nn.serialize import load_module, save_module

        model = trained_predictors["dnn"].model
        path = tmp_path / "legacy.npz"
        save_module(model, path)
        with pytest.warns(DeprecationWarning, match="cannot be served"):
            load_module(model, path)

    def test_artifact_weights_load_without_warning(self, trained_predictors,
                                                   tmp_path, recwarn):
        save_artifact(trained_predictors["dnn"], tmp_path / "a")
        load_artifact(tmp_path / "a")
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]
