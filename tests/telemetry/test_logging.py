"""repro.telemetry.logging — structured JSON records, trace correlation."""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.telemetry import (
    CapturingLogger,
    StructuredLogger,
    get_logger,
    start_trace,
)


def test_records_carry_standard_fields():
    log = CapturingLogger()
    log.info("model_loaded", name="snn", version=3)
    (record,) = log.records
    assert record["level"] == "info"
    assert record["logger"] == "test"
    assert record["event"] == "model_loaded"
    assert record["name"] == "snn"
    assert record["version"] == 3
    assert isinstance(record["ts"], float)
    assert "trace_id" not in record  # no active trace


def test_min_level_filters():
    log = CapturingLogger(min_level="warning")
    log.debug("noise")
    log.info("noise")
    log.warning("kept")
    log.error("kept_too", code="boom")
    events = [r["event"] for r in log.records]
    assert events == ["kept", "kept_too"]


def test_unknown_levels_raise():
    with pytest.raises(ValueError):
        StructuredLogger("x", min_level="loud")
    log = CapturingLogger()
    with pytest.raises(ValueError):
        log.log("loud", "event")


def test_trace_id_auto_correlated():
    log = CapturingLogger()
    with start_trace("req", trace_id="trace-xyz"):
        log.info("inside")
    log.info("outside")
    inside, outside = log.records
    assert inside["trace_id"] == "trace-xyz"
    assert "trace_id" not in outside


def test_explicit_trace_id_wins():
    log = CapturingLogger()
    with start_trace("req", trace_id="ambient"):
        log.info("evt", trace_id="explicit")
    (record,) = log.records
    assert record["trace_id"] == "explicit"


def test_non_serializable_values_are_stringified():
    log = CapturingLogger()
    log.info("evt", obj=object(), path=threading.Lock())
    (record,) = log.records  # must not raise
    assert "object object" in record["obj"]


def test_one_json_object_per_line():
    stream = io.StringIO()
    log = StructuredLogger("repro", stream=stream, min_level="debug")
    log.debug("a")
    log.info("b")
    lines = stream.getvalue().splitlines()
    assert len(lines) == 2
    assert [json.loads(line)["event"] for line in lines] == ["a", "b"]


def test_get_logger_memoizes_by_name():
    a = get_logger("repro.test.memo")
    b = get_logger("repro.test.memo")
    other = get_logger("repro.test.other")
    assert a is b
    assert a is not other
