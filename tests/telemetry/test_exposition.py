"""repro.telemetry.exposition — golden render + strict parse."""

from __future__ import annotations

import math

import pytest

from repro.telemetry import (
    ExpositionError,
    MetricsRegistry,
    parse_text,
    render_text,
)
from repro.telemetry.exposition import escape_label_value, format_value


def test_golden_exposition():
    """Exact text for a small registry — pins the 0.0.4 format."""
    registry = MetricsRegistry()
    c = registry.counter("requests_total", "Requests handled.",
                         ("endpoint", "status"))
    c.labels(endpoint="/v1/rank", status="200").inc(3)
    g = registry.gauge("uptime_seconds", "Seconds up.")
    g.set(12.5)
    h = registry.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    assert render_text(registry) == (
        "# HELP requests_total Requests handled.\n"
        "# TYPE requests_total counter\n"
        'requests_total{endpoint="/v1/rank",status="200"} 3\n'
        "# HELP uptime_seconds Seconds up.\n"
        "# TYPE uptime_seconds gauge\n"
        "uptime_seconds 12.5\n"
        "# HELP lat_seconds Latency.\n"
        "# TYPE lat_seconds histogram\n"
        'lat_seconds_bucket{le="0.1"} 1\n'
        'lat_seconds_bucket{le="1"} 2\n'
        'lat_seconds_bucket{le="+Inf"} 3\n'
        "lat_seconds_sum 5.55\n"
        "lat_seconds_count 3\n"
    )


def test_unset_unlabelled_gauge_renders_zero():
    registry = MetricsRegistry()
    registry.gauge("idle_seconds", "Never set.")
    assert "idle_seconds 0\n" in render_text(registry)


def test_registries_deduplicated_by_identity():
    registry = MetricsRegistry()
    registry.counter("a_total").inc()
    once = render_text(registry)
    assert render_text(registry, registry, registry) == once


def test_label_value_escaping_roundtrip():
    registry = MetricsRegistry()
    nasty = 'he said "hi"\\path\nnext'
    registry.counter("odd_total", "", ("text",)).labels(text=nasty).inc()
    text = render_text(registry)
    (sample,) = parse_text(text)
    assert sample.labels_dict["text"] == nasty


def test_format_value_specials():
    assert format_value(3.0) == "3"
    assert format_value(2.5) == "2.5"
    assert format_value(math.inf) == "+Inf"
    assert format_value(-math.inf) == "-Inf"
    assert format_value(math.nan) == "NaN"
    assert escape_label_value('a"b') == 'a\\"b'


def test_parse_roundtrip_values():
    registry = MetricsRegistry()
    registry.counter("reqs_total", "", ("code",)).labels(code="404").inc(7)
    registry.gauge("depth").set(-2.25)
    samples = parse_text(render_text(registry))
    by_name = {(s.name, s.labels): s.value for s in samples}
    assert by_name[("reqs_total", (("code", "404"),))] == 7
    assert by_name[("depth", ())] == -2.25


def test_parse_skips_comments_and_blanks():
    text = "# HELP x_total h\n# TYPE x_total counter\n\nx_total 1\n"
    (sample,) = parse_text(text)
    assert sample.name == "x_total" and sample.value == 1


@pytest.mark.parametrize("bad", [
    "not a metric line at all !",
    "x_total one",
    'x_total{code=404} 1',          # unquoted label value
    'x_total{code="404" 1',         # unterminated label block
    "{} 1",
])
def test_parse_rejects_malformed_lines(bad):
    with pytest.raises(ExpositionError):
        parse_text(f"# ok\n{bad}\n")


def test_parse_special_values():
    samples = parse_text("a 1\nb +Inf\nc -Inf\nd NaN\n")
    assert samples[1].value == math.inf
    assert samples[2].value == -math.inf
    assert math.isnan(samples[3].value)
