"""repro.telemetry.metrics — instruments, labels, thread-safety."""

from __future__ import annotations

import threading

import pytest

from repro.telemetry import (
    DEFAULT_BUCKETS,
    MetricError,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_unlabelled_inc(self, registry):
        c = registry.counter("jobs_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_raises(self, registry):
        c = registry.counter("jobs_total")
        with pytest.raises(MetricError, match="cannot decrease"):
            c.inc(-1)

    def test_labelled_children_are_independent(self, registry):
        c = registry.counter("requests_total", "", ("endpoint", "status"))
        c.labels(endpoint="/v1/rank", status="200").inc(3)
        c.labels(endpoint="/v1/rank", status="422").inc()
        assert c.labels(endpoint="/v1/rank", status="200").value() == 3
        assert c.labels(endpoint="/v1/rank", status="422").value() == 1
        assert c.labels(endpoint="/v1/rank", status="500").value() == 0

    def test_wrong_label_set_raises(self, registry):
        c = registry.counter("requests_total", "", ("endpoint",))
        with pytest.raises(MetricError, match="expects labels"):
            c.labels(status="200")
        with pytest.raises(MetricError):
            c.inc()  # labelled metric needs .labels()

    def test_label_values_coerced_to_str(self, registry):
        c = registry.counter("codes_total", "", ("code",))
        c.labels(code=404).inc()
        assert c.labels(code="404").value() == 1


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("queue_depth")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13

    def test_callback_gauge(self, registry):
        state = {"v": 0.25}
        g = registry.gauge_fn("hit_ratio", "", lambda: state["v"])
        assert g.samples() == [((), 0.25)]
        state["v"] = 0.75
        assert g.samples() == [((), 0.75)]

    def test_callback_gauge_cannot_be_labelled(self, registry):
        from repro.telemetry.metrics import Gauge

        with pytest.raises(MetricError, match="cannot be labelled"):
            Gauge("g", "", ("x",), threading.RLock(), fn=lambda: 1.0)


class TestHistogram:
    def test_boundaries_are_inclusive(self, registry):
        h = registry.histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        h.observe(0.1)      # exactly on the first bound -> le="0.1"
        h.observe(0.10001)  # just above -> le="1.0"
        h.observe(50.0)     # overflow -> +Inf only
        (key, value), = h.samples()
        assert key == ()
        assert value.counts == [1, 1, 0, 1]  # non-cumulative internally
        assert value.count == 3
        assert value.total == pytest.approx(50.20001)

    def test_below_first_bucket(self, registry):
        h = registry.histogram("lat_seconds", buckets=(0.5, 1.0))
        h.observe(0.0)
        h.observe(-1.0)  # clock skew etc. must not crash
        (_, value), = h.samples()
        assert value.counts[0] == 2

    def test_quantile_interpolates(self, registry):
        h = registry.histogram("lat_seconds", buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            h.observe(1.5)
        # All mass sits in (1.0, 2.0]; the median interpolates inside it.
        assert 1.0 < h.quantile(0.5) <= 2.0
        assert h.quantile(0.0) >= 0.0
        assert h.quantile(1.0) <= 4.0

    def test_quantile_empty_is_zero(self, registry):
        h = registry.histogram("lat_seconds")
        assert h.quantile(0.5) == 0.0

    def test_quantile_overflow_returns_last_bound(self, registry):
        h = registry.histogram("lat_seconds", buckets=(1.0, 2.0))
        for _ in range(10):
            h.observe(100.0)
        assert h.quantile(0.5) == 2.0

    def test_unsorted_buckets_raise(self, registry):
        with pytest.raises(MetricError, match="sorted"):
            registry.histogram("h", buckets=(1.0, 0.5))
        with pytest.raises(MetricError, match="distinct"):
            registry.histogram("h2", buckets=(1.0, 1.0))

    def test_aggregates_across_labels(self, registry):
        h = registry.histogram("lat_seconds", labelnames=("model",))
        h.labels(model="snn").observe(0.002)
        h.labels(model="dnn").observe(0.002)
        assert h.count == 2
        assert h.total == pytest.approx(0.004)


class TestRegistry:
    def test_registration_is_idempotent(self, registry):
        a = registry.counter("x_total", "first")
        b = registry.counter("x_total", "second")
        assert a is b

    def test_type_conflict_raises(self, registry):
        registry.counter("x_total")
        with pytest.raises(MetricError, match="already registered"):
            registry.gauge("x_total")

    def test_labelset_conflict_raises(self, registry):
        registry.counter("x_total", "", ("a",))
        with pytest.raises(MetricError, match="already registered"):
            registry.counter("x_total", "", ("b",))

    def test_bucket_conflict_raises(self, registry):
        registry.histogram("h_seconds", buckets=(1.0, 2.0))
        with pytest.raises(MetricError, match="already registered"):
            registry.histogram("h_seconds", buckets=(1.0, 3.0))
        # Same buckets: fine.
        registry.histogram("h_seconds", buckets=(1.0, 2.0))

    def test_invalid_names_raise(self, registry):
        with pytest.raises(MetricError, match="invalid metric name"):
            registry.counter("1bad")
        with pytest.raises(MetricError, match="invalid label name"):
            registry.counter("ok_total", "", ("bad-label",))

    def test_collect_preserves_registration_order(self, registry):
        registry.counter("a_total")
        registry.gauge("b")
        registry.histogram("c_seconds")
        assert [m.name for m in registry.collect()] == \
            ["a_total", "b", "c_seconds"]

    def test_default_registry_swap_restores(self):
        mine = MetricsRegistry()
        previous = set_default_registry(mine)
        try:
            assert default_registry() is mine
        finally:
            set_default_registry(previous)
        assert default_registry() is previous

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestThreadSafety:
    def test_concurrent_increments_sum_exactly(self, registry):
        """N threads hammering one labelled counter lose no increments."""
        c = registry.counter("hits_total", "", ("worker",))
        h = registry.histogram("work_seconds", buckets=(0.5, 1.0))
        n_threads, per_thread = 8, 5000
        barrier = threading.Barrier(n_threads)

        def worker(i: int) -> None:
            bound = c.labels(worker=str(i % 2))
            barrier.wait()
            for _ in range(per_thread):
                bound.inc()
                h.observe(0.25)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(value for _, value in c.samples())
        assert total == n_threads * per_thread
        assert h.count == n_threads * per_thread
