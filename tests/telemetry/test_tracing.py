"""repro.telemetry.tracing — span trees, contextvars, ring store."""

from __future__ import annotations

import json
import threading

import pytest

from repro.telemetry import (
    TraceStore,
    current_span,
    current_trace_id,
    new_trace_id,
    sanitize_trace_id,
    span,
    start_trace,
)
from repro.telemetry.tracing import _NOOP


def test_span_outside_trace_is_shared_noop():
    assert current_span() is None
    s = span("anything", key="value")
    assert s is _NOOP
    with s as inner:
        inner.set("still", "a no-op")
    assert current_span() is None


def test_nesting_builds_the_tree():
    with start_trace("root", request="r1") as root:
        assert current_span() is root
        with span("child_a", n=1) as a:
            with span("grandchild") as g:
                assert current_span() is g
            assert current_span() is a
        with span("child_b"):
            pass
    assert [c.name for c in root.children] == ["child_a", "child_b"]
    assert root.children[0].children[0].name == "grandchild"
    assert root.attributes == {"request": "r1"}
    assert root.duration_ms is not None and root.duration_ms >= 0
    # Every node shares the root's trace id and records its parent.
    for node in root.walk():
        assert node.trace_id == root.trace_id
    assert root.children[0].parent_id == root.span_id
    assert current_span() is None


def test_to_dict_is_json_safe_and_recursive():
    with start_trace("root") as root:
        with span("child", rows=3):
            pass
    tree = json.loads(json.dumps(root.to_dict()))
    assert tree["name"] == "root"
    assert tree["children"][0]["attributes"] == {"rows": 3}
    assert tree["children"][0]["duration_ms"] is not None


def test_exception_recorded_and_propagated():
    with pytest.raises(RuntimeError):
        with start_trace("root") as root:
            with span("failing"):
                raise RuntimeError("boom")
    assert root.children[0].attributes["error"] == "RuntimeError"
    assert root.attributes["error"] == "RuntimeError"
    assert current_span() is None


def test_supplied_and_current_trace_id():
    assert current_trace_id() is None
    with start_trace("root", trace_id="abc-123"):
        assert current_trace_id() == "abc-123"
    assert current_trace_id() is None


def test_store_archives_on_exit():
    store = TraceStore(capacity=2)
    for i in range(3):
        with start_trace(f"req-{i}", store=store):
            pass
    assert len(store) == 2
    recent = store.recent()
    assert [r["name"] for r in recent] == ["req-2", "req-1"]  # newest first
    assert store.recent(limit=1)[0]["name"] == "req-2"
    with pytest.raises(ValueError):
        store.recent(limit=-1)


def test_store_capacity_validation():
    with pytest.raises(ValueError):
        TraceStore(capacity=0)


def test_sanitize_trace_id():
    assert sanitize_trace_id("Abc-123_xyz") == "Abc-123_xyz"
    assert sanitize_trace_id("  padded  ") == "padded"  # outer space stripped
    long = "a" * 200
    assert sanitize_trace_id(long) == "a" * 64
    for hostile in (None, "", "a b", 'x"y', "a\nb"):
        fresh = sanitize_trace_id(hostile)
        assert len(fresh) == 32 and fresh.isalnum()
    assert new_trace_id() != new_trace_id()


def test_threads_get_independent_spans():
    """Contextvars isolate handler threads (the ThreadingHTTPServer case)."""
    seen = {}
    barrier = threading.Barrier(2)

    def worker(name: str) -> None:
        with start_trace(name) as root:
            barrier.wait()
            with span("inner"):
                seen[name] = (current_trace_id(), root.trace_id)
            barrier.wait()

    threads = [threading.Thread(target=worker, args=(n,))
               for n in ("t1", "t2")]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert seen["t1"][0] == seen["t1"][1]
    assert seen["t2"][0] == seen["t2"][1]
    assert seen["t1"][0] != seen["t2"][0]
