"""Shared fixtures for the data-source tests.

A short-horizon tiny world keeps its exported candle grid (and therefore
the dump round-trips) small; the world, its collection and a canonical
dump are built once per session.
"""

from __future__ import annotations

import pytest

from repro.data import collect
from repro.simulation import SyntheticWorld
from repro.sources import export_synthetic_dump
from repro.utils import ReproConfig


@pytest.fixture(scope="session")
def short_world():
    return SyntheticWorld.generate(ReproConfig.tiny().with_(horizon_hours=2600))


@pytest.fixture(scope="session")
def short_collection(short_world):
    return collect(short_world)


@pytest.fixture(scope="session")
def dump_dir(short_world, short_collection, tmp_path_factory):
    out = tmp_path_factory.mktemp("source-dump") / "dump"
    export_synthetic_dump(short_world, out, collection=short_collection)
    return out
