"""The protocol seam: coercion, adapter surface, descriptors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sources import (
    ChannelDirectory,
    CoinCatalog,
    MarketDataSource,
    SourceDataError,
    SyntheticWorldSource,
    as_source,
    parse_source_spec,
)


class TestAsSource:
    def test_world_is_wrapped(self, short_world):
        source = as_source(short_world)
        assert isinstance(source, SyntheticWorldSource)
        assert source.kind == "synthetic"
        assert source.world is short_world

    def test_source_passes_through(self, short_world):
        source = as_source(short_world)
        assert as_source(source) is source

    def test_rejects_garbage(self):
        with pytest.raises(TypeError, match="cannot build a data source"):
            as_source(42)


class TestSyntheticAdapter:
    def test_zero_copy_components(self, short_world):
        source = as_source(short_world)
        assert source.market is short_world.market
        assert source.coins is short_world.coins
        assert source.channels is short_world.channels
        assert list(source.messages()) == list(short_world.messages)

    def test_protocol_conformance(self, short_world):
        source = as_source(short_world)
        assert isinstance(source.market, MarketDataSource)
        assert isinstance(source.coins, CoinCatalog)
        assert isinstance(source.channels, ChannelDirectory)

    def test_config_knobs(self, short_world):
        source = as_source(short_world)
        config = short_world.config
        assert source.seed == config.seed
        assert source.sequence_length == config.sequence_length
        assert source.max_negatives_per_event == config.max_negatives_per_event
        assert source.n_exchanges == config.n_exchanges
        assert len(source.exchange_names) == config.n_exchanges
        assert source.repro_config() is config

    def test_descriptor_is_stable(self, short_world):
        a = as_source(short_world).descriptor()
        b = as_source(short_world).descriptor()
        assert a == b
        assert a["backend"] == "synthetic"
        assert a["fingerprint"].startswith("synthetic:")

    def test_channel_directory_protocol(self, short_world):
        directory = as_source(short_world).channels
        subs = directory.subscriber_counts()
        pump_ids = {c.channel_id for c in short_world.channels.pump_channels}
        assert set(subs) == pump_ids
        assert directory.dead_channel_ids() <= pump_ids
        assert set(directory.seed_channel_ids()) <= set(
            directory.all_channel_ids()
        )


class TestParseSourceSpec:
    def test_synthetic(self, short_world):
        source = parse_source_spec("synthetic", config=short_world.config)
        assert source.kind == "synthetic"
        assert source.seed == short_world.config.seed

    def test_file(self, dump_dir):
        source = parse_source_spec(f"file:{dump_dir}")
        assert source.kind == "file"
        assert source.coins.n_coins > 0

    def test_rejects_unknown(self):
        with pytest.raises(SourceDataError, match="unknown source spec"):
            parse_source_spec("postgres://nope")

    def test_rejects_empty_file_path(self):
        with pytest.raises(SourceDataError, match="needs a dump directory"):
            parse_source_spec("file:")


class TestMarketParity:
    """The adapter must answer market queries through the same object."""

    def test_log_close_identical(self, short_world):
        source = as_source(short_world)
        coins = np.array([5, 9, 30])
        hours = np.array([100.0, 500.5, 2000.25])
        np.testing.assert_array_equal(
            source.market.log_close(coins, hours),
            short_world.market.log_close(coins, hours),
        )
