"""Ingestion: canonical layout, raw-file normalization, fingerprints."""

from __future__ import annotations

import csv
import json

import numpy as np
import pytest

from repro.sources import (
    FileDatasetSource,
    SourceDataError,
    export_synthetic_dump,
    ingest_raw,
)


class TestSyntheticExport:
    def test_canonical_files_exist(self, dump_dir):
        for name in ("meta.json", "coins.csv", "candles.csv", "listings.csv",
                     "channels.csv", "messages.jsonl"):
            assert (dump_dir / name).is_file(), name

    def test_meta_knobs_round_trip(self, short_world, dump_dir):
        meta = json.loads((dump_dir / "meta.json").read_text())
        config = short_world.config
        assert meta["seed"] == config.seed
        assert meta["sequence_length"] == config.sequence_length
        assert meta["max_negatives_per_event"] == config.max_negatives_per_event
        assert meta["n_exchanges"] == config.n_exchanges
        assert meta["origin"]["backend"] == "synthetic"

    def test_refuses_nonempty_foreign_directory(self, short_world, tmp_path):
        target = tmp_path / "occupied"
        target.mkdir()
        (target / "precious.txt").write_text("do not clobber")
        with pytest.raises(SourceDataError, match="refusing to write"):
            export_synthetic_dump(short_world, target)

    def test_fingerprint_tracks_content(self, dump_dir, tmp_path):
        import shutil

        clone = tmp_path / "fp-clone"
        shutil.copytree(dump_dir, clone)
        original = FileDatasetSource(dump_dir).fingerprint()
        assert FileDatasetSource(clone).fingerprint() == original
        with open(clone / "messages.jsonl", "a") as handle:
            handle.write(json.dumps({
                "message_id": 10**9, "channel_id": 1, "time": 1e6,
                "text": "tamper", "kind": "generic"}) + "\n")
        assert FileDatasetSource(clone).fingerprint() != original

    def test_compressed_export_loads(self, short_world, short_collection,
                                     tmp_path):
        out = tmp_path / "gz-dump"
        source = export_synthetic_dump(short_world, out,
                                       collection=short_collection,
                                       compress=True)
        assert (out / "candles.csv.gz").is_file()
        assert (out / "messages.jsonl.gz").is_file()
        assert len(source.messages()) == len(short_world.messages)


class TestRawIngest:
    @pytest.fixture()
    def raw_files(self, tmp_path):
        raw = tmp_path / "raw"
        raw.mkdir()
        with open(raw / "coins.csv", "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["symbol", "market_cap", "alexa_rank",
                             "reddit_subscribers", "twitter_followers"])
            writer.writerow(["AAA", 1e9, 100, 5000, 9000])
            writer.writerow(["BBB", 5e8, 400, 100, 20])
        with open(raw / "candles.csv", "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["symbol", "hour", "close", "volume"])
            # Deliberately unsorted: ingest must canonicalize.
            for hour in (5, 3, 4, 1, 2, 0):
                writer.writerow(["AAA", hour, 1.5 + hour, 100.0])
                writer.writerow(["BBB", hour, 0.25, 40.0])
        with open(raw / "messages.jsonl", "w") as handle:
            records = [
                {"channel_id": 11, "time": 4.5, "text": "Coin: AAA",
                 "is_pump": True},
                {"channel_id": 11, "time": 1.0, "text": "hello world"},
                {"channel_id": 12, "time": 1.0, "text": "gm"},
            ]
            for record in records:
                handle.write(json.dumps(record) + "\n")
        return raw

    def test_normalizes_and_loads(self, raw_files, tmp_path):
        out = tmp_path / "canonical"
        source = ingest_raw(
            out,
            messages=raw_files / "messages.jsonl",
            candles=raw_files / "candles.csv",
            coins=raw_files / "coins.csv",
            seed=3, sequence_length=7, max_negatives_per_event=9,
        )
        assert isinstance(source, FileDatasetSource)
        assert source.coins.symbols == ["AAA", "BBB"]
        assert source.seed == 3
        assert source.sequence_length == 7
        # Candles were sorted; queries answer across the recorded range.
        np.testing.assert_allclose(
            source.market.log_close(np.array([0]), np.array([3.0])),
            np.log([4.5]),
        )
        # Messages sorted by (time, channel_id); is_pump mapped to a kind.
        messages = source.messages()
        assert [m.channel_id for m in messages] == [11, 12, 11]
        assert messages[-1].is_pump_message
        # Channels derived from the stream; every coin listed on exchange 0.
        assert set(source.channels.all_channel_ids()) == {11, 12}
        assert source.channels.subscriber_counts() == {11: 1000, 12: 1000}
        np.testing.assert_array_equal(
            source.coins.listed_coins(0, 0.0), np.array([0, 1])
        )

    def test_duplicate_candles_rejected(self, raw_files, tmp_path):
        with open(raw_files / "candles.csv", "a", newline="") as handle:
            csv.writer(handle).writerow(["AAA", 3, 9.9, 1.0])
        with pytest.raises(SourceDataError, match="duplicate candle"):
            ingest_raw(tmp_path / "dup", messages=raw_files / "messages.jsonl",
                       candles=raw_files / "candles.csv",
                       coins=raw_files / "coins.csv")

    def test_unknown_candle_symbol_rejected(self, raw_files, tmp_path):
        with open(raw_files / "candles.csv", "a", newline="") as handle:
            csv.writer(handle).writerow(["ZZZ", 3, 9.9, 1.0])
        with pytest.raises(SourceDataError, match="unknown coin symbol"):
            ingest_raw(tmp_path / "bad", messages=raw_files / "messages.jsonl",
                       candles=raw_files / "candles.csv",
                       coins=raw_files / "coins.csv")

    def test_missing_raw_column_rejected(self, raw_files, tmp_path):
        (raw_files / "coins.csv").write_text("symbol,market_cap\nAAA,1e9\n")
        with pytest.raises(SourceDataError, match="missing required column"):
            ingest_raw(tmp_path / "cols", messages=raw_files / "messages.jsonl",
                       candles=raw_files / "candles.csv",
                       coins=raw_files / "coins.csv")


class TestReviewRegressions:
    def test_exchange_names_never_exceed_listing_matrix(self, tmp_path):
        """A name with no listings row would let the serving sessionizer
        emit an exchange id that crashes candidate lookup."""
        import csv as _csv

        raw = tmp_path / "raw"
        raw.mkdir()
        with open(raw / "coins.csv", "w", newline="") as handle:
            writer = _csv.writer(handle)
            writer.writerow(["symbol", "market_cap", "alexa_rank",
                             "reddit_subscribers", "twitter_followers"])
            writer.writerow(["AAA", 1e9, 100, 5000, 9000])
        with open(raw / "candles.csv", "w", newline="") as handle:
            writer = _csv.writer(handle)
            writer.writerow(["symbol", "hour", "close", "volume"])
            writer.writerow(["AAA", 0, 1.0, 10.0])
        with open(raw / "messages.jsonl", "w") as handle:
            handle.write(json.dumps({"channel_id": 1, "time": 0.5,
                                     "text": "pump on Yobit"}) + "\n")
        source = ingest_raw(tmp_path / "out",
                            messages=raw / "messages.jsonl",
                            candles=raw / "candles.csv",
                            coins=raw / "coins.csv")
        assert source.n_exchanges == 1
        assert len(source.exchange_names) == source.n_exchanges
        # "Yobit" is not an advertised name, so the sessionizer can never
        # produce exchange_id=1 against a 1-row listing matrix.
        assert "Yobit" not in source.exchange_names

    def test_recompressed_reingest_replaces_stale_plain_files(
            self, short_world, short_collection, tmp_path):
        """A stale plain candles.csv must not shadow a fresh .csv.gz."""
        out = tmp_path / "redump"
        first = export_synthetic_dump(short_world, out,
                                      collection=short_collection)
        fingerprint = first.fingerprint()
        again = export_synthetic_dump(short_world, out,
                                      collection=short_collection,
                                      compress=True)
        assert not (out / "candles.csv").exists()
        assert (out / "candles.csv.gz").is_file()
        # Same content, different encoding: the dump still reads the
        # fresh files (message count intact), not leftovers.
        assert len(again.messages()) == len(first.messages())
        assert again.fingerprint() != fingerprint  # hashes the gz bytes
