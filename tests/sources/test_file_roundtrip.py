"""End-to-end: a FileDatasetSource dump trains, registers, and serves.

Covers the two deployment stories the data-plane refactor exists for:

* **file → file** — train a ranker *from the dump alone*, publish it to a
  model registry, and serve the dump's test period through a
  registry-loaded artifact (zero training at serve time);
* **synthetic → file** — train against the simulator, then serve the
  exported dump with the same artifact (train once, serve anywhere).
"""

from __future__ import annotations

import pytest

from repro.core import train_predictor
from repro.data import collect
from repro.registry import ModelRegistry
from repro.serving import CollectingSink, PredictionService, replay_test_period
from repro.sources import FileDatasetSource


@pytest.fixture(scope="module")
def file_source(dump_dir):
    return FileDatasetSource(dump_dir)


@pytest.fixture(scope="module")
def file_collection(file_source):
    return collect(file_source)


@pytest.fixture(scope="module")
def file_predictor(file_source, file_collection):
    return train_predictor(file_source, file_collection, model="dnn",
                           epochs=1, seed=0)


class TestTrainFromFile:
    def test_collect_matches_the_origin_world(self, file_collection,
                                              short_collection):
        """Identical messages + seed ⇒ identical extracted dataset."""
        file_examples = file_collection.dataset.examples
        world_examples = short_collection.dataset.examples
        assert len(file_examples) == len(world_examples)
        assert [(e.list_id, e.channel_id, e.coin_id, e.label, e.split)
                for e in file_examples] == \
            [(e.list_id, e.channel_id, e.coin_id, e.label, e.split)
             for e in world_examples]

    def test_provenance_records_the_file_backend(self, file_predictor):
        descriptor = file_predictor.provenance["data_source"]
        assert descriptor["backend"] == "file"
        assert descriptor["fingerprint"].startswith("file:")


class TestServeFromRegistry:
    def test_registry_loaded_artifact_serves_alerts(self, tmp_path_factory,
                                                    file_source,
                                                    file_collection,
                                                    file_predictor):
        registry = ModelRegistry(tmp_path_factory.mktemp("file-registry"))
        entry = registry.publish(file_predictor, "file-dnn")
        artifact_dir = registry.resolve("file-dnn", entry.version)

        sink = CollectingSink()
        result = replay_test_period(
            file_source, file_collection, artifact_dir, sinks=(sink,),
        )
        assert len(result.alerts) > 0
        assert sink.alerts == result.alerts
        served = result.alerts[0]
        assert served.ranking.scores  # ranked candidates, not an empty shell

    def test_prediction_service_boots_from_artifact(self, tmp_path_factory,
                                                    file_source,
                                                    file_collection,
                                                    file_predictor):
        artifact = file_predictor.to_artifact()
        path = artifact.save(tmp_path_factory.mktemp("svc") / "artifact")
        service = PredictionService.from_artifact(
            path, file_source, file_collection.dataset
        )
        assert service.predictor.source is file_source


class TestCrossBackendServing:
    def test_synthetic_trained_artifact_serves_the_dump(self, short_world,
                                                        short_collection,
                                                        file_source,
                                                        file_collection,
                                                        tmp_path_factory):
        """Train once on the simulator, serve the recorded file dump."""
        predictor = train_predictor(short_world, short_collection,
                                    model="dnn", epochs=1, seed=0)
        path = predictor.to_artifact().save(
            tmp_path_factory.mktemp("cross") / "artifact"
        )
        result = replay_test_period(file_source, file_collection, str(path))
        assert len(result.alerts) > 0
        # The served predictor reads features from the *file* backend.
        assert result.alerts[0].ranking.scores
