"""FileDatasetSource: happy-path semantics and the error taxonomy.

Every malformed-dump scenario must raise :class:`SourceDataError` with a
pointed diagnostic — wrong features are never an acceptable fallback.
"""

from __future__ import annotations

import json
import shutil

import numpy as np
import pytest

from repro.sources import FileDatasetSource, SourceDataError, as_source


def _clone(dump_dir, tmp_path, name="clone"):
    target = tmp_path / name
    shutil.copytree(dump_dir, target)
    return target


def _rewrite_csv(path, transform):
    lines = path.read_text().splitlines()
    path.write_text("\n".join(transform(lines)) + "\n")


class TestHappyPath:
    def test_loads_and_describes(self, dump_dir):
        source = FileDatasetSource(dump_dir)
        assert source.kind == "file"
        descriptor = source.descriptor()
        assert descriptor["backend"] == "file"
        assert descriptor["fingerprint"].startswith("file:")
        assert descriptor["n_messages"] == len(source.messages())

    def test_messages_chronological_with_kinds(self, dump_dir):
        source = FileDatasetSource(dump_dir)
        times = [m.time for m in source.messages()]
        assert times == sorted(times)
        assert any(m.is_pump_message for m in source.messages())

    def test_candles_match_the_origin_world(self, short_world, dump_dir):
        """Exported grid values round-trip to the simulator's (1 ulp)."""
        source = FileDatasetSource(dump_dir)
        market = source.market
        lo, hi = market.hour_range
        coins = short_world.coins.listed_coins(0, float(hi))[:5]
        hours = np.full(len(coins), float(hi))
        np.testing.assert_allclose(
            market.log_close(coins, hours),
            short_world.market.log_close(coins, hours),
            rtol=1e-12,
        )
        np.testing.assert_allclose(
            market.hourly_volume(coins, hours),
            short_world.market.hourly_volume(coins, hours),
            rtol=1e-12,
        )

    def test_fractional_hours_floor_to_the_candle(self, dump_dir):
        source = FileDatasetSource(dump_dir)
        lo, hi = source.market.hour_range
        coin = int(source.coins.listed_coins(0, float(hi))[0])
        exact = source.market.log_close(np.array([coin]), np.array([float(hi)]))
        frac = source.market.log_close(np.array([coin]),
                                       np.array([hi + 0.73]))
        np.testing.assert_array_equal(exact, frac)

    def test_listings_and_subscribers(self, short_world, dump_dir):
        source = FileDatasetSource(dump_dir)
        np.testing.assert_array_equal(
            source.coins.listed_coins(0, 1000.0),
            short_world.coins.listed_coins(0, 1000.0),
        )
        assert source.channels.subscriber_counts() == \
            short_world.channels.subscriber_counts()
        assert set(source.channels.seed_channel_ids()) == \
            set(short_world.channels.seed_channel_ids())
        assert source.channels.dead_channel_ids() == \
            short_world.channels.dead_channel_ids()


class TestErrorPaths:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(SourceDataError, match="not a dump directory"):
            FileDatasetSource(tmp_path / "nope")

    def test_missing_meta(self, dump_dir, tmp_path):
        clone = _clone(dump_dir, tmp_path)
        (clone / "meta.json").unlink()
        with pytest.raises(SourceDataError, match="missing meta.json"):
            FileDatasetSource(clone)

    def test_wrong_schema_version(self, dump_dir, tmp_path):
        clone = _clone(dump_dir, tmp_path)
        meta = json.loads((clone / "meta.json").read_text())
        meta["schema_version"] = 999
        (clone / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(SourceDataError, match="schema v999"):
            FileDatasetSource(clone)

    def test_missing_candles_file(self, dump_dir, tmp_path):
        clone = _clone(dump_dir, tmp_path)
        (clone / "candles.csv").unlink()
        with pytest.raises(SourceDataError, match="missing candles.csv"):
            FileDatasetSource(clone)

    def test_missing_column(self, dump_dir, tmp_path):
        clone = _clone(dump_dir, tmp_path)

        def drop_volume(lines):
            header = lines[0].split(",")
            keep = [i for i, c in enumerate(header) if c != "volume"]
            return [",".join(line.split(",")[i] for i in keep)
                    for line in lines]

        _rewrite_csv(clone / "candles.csv", drop_volume)
        with pytest.raises(SourceDataError,
                           match=r"missing required column\(s\) \['volume'\]"):
            FileDatasetSource(clone)

    def test_unsorted_candle_timestamps(self, dump_dir, tmp_path):
        clone = _clone(dump_dir, tmp_path)

        def swap_rows(lines):
            lines[1], lines[2] = lines[2], lines[1]
            return lines

        _rewrite_csv(clone / "candles.csv", swap_rows)
        with pytest.raises(SourceDataError, match="not\\s+sorted by hour"):
            FileDatasetSource(clone)

    def test_unknown_candle_symbol(self, dump_dir, tmp_path):
        clone = _clone(dump_dir, tmp_path)

        def bogus_symbol(lines):
            first = lines[1].split(",")
            first[0] = "NOTACOIN"
            lines[1] = ",".join(first)
            return lines

        _rewrite_csv(clone / "candles.csv", bogus_symbol)
        with pytest.raises(SourceDataError,
                           match="unknown coin symbol 'NOTACOIN'"):
            FileDatasetSource(clone)

    def test_unsorted_message_timestamps(self, dump_dir, tmp_path):
        clone = _clone(dump_dir, tmp_path)
        lines = (clone / "messages.jsonl").read_text().splitlines()
        lines[0], lines[-1] = lines[-1], lines[0]
        (clone / "messages.jsonl").write_text("\n".join(lines) + "\n")
        with pytest.raises(SourceDataError, match="not sorted by\\s+time"):
            FileDatasetSource(clone)

    def test_message_missing_field(self, dump_dir, tmp_path):
        clone = _clone(dump_dir, tmp_path)
        lines = (clone / "messages.jsonl").read_text().splitlines()
        record = json.loads(lines[0])
        del record["text"]
        lines[0] = json.dumps(record)
        (clone / "messages.jsonl").write_text("\n".join(lines) + "\n")
        with pytest.raises(SourceDataError, match=r"missing field\(s\) \['text'\]"):
            FileDatasetSource(clone)

    def test_nonpositive_close(self, dump_dir, tmp_path):
        clone = _clone(dump_dir, tmp_path)

        def zero_close(lines):
            first = lines[1].split(",")
            first[2] = "0.0"
            lines[1] = ",".join(first)
            return lines

        _rewrite_csv(clone / "candles.csv", zero_close)
        with pytest.raises(SourceDataError, match="close must be positive"):
            FileDatasetSource(clone)

    def test_unknown_listing_symbol(self, dump_dir, tmp_path):
        clone = _clone(dump_dir, tmp_path)

        def bogus(lines):
            first = lines[1].split(",")
            first[1] = "NOTACOIN"
            lines[1] = ",".join(first)
            return lines

        _rewrite_csv(clone / "listings.csv", bogus)
        with pytest.raises(SourceDataError,
                           match="unknown coin symbol 'NOTACOIN'"):
            FileDatasetSource(clone)

    def test_empty_candle_window_raises(self, dump_dir):
        """A window outside the recorded grid is an error, never zeros."""
        source = FileDatasetSource(dump_dir)
        lo, _hi = source.market.hour_range
        coin = np.array([int(source.coins.listed_coins(0, 1e9)[0])])
        with pytest.raises(SourceDataError, match="no volume candle"):
            source.market.window_volume_profile(coin, float(lo), 72)

    def test_uncovered_price_hour_raises(self, dump_dir):
        source = FileDatasetSource(dump_dir)
        coin = np.array([int(source.coins.listed_coins(0, 1e9)[0])])
        with pytest.raises(SourceDataError, match="no close candle"):
            source.market.log_close(coin, np.array([1e7]))


class TestFeatureSafety:
    def test_features_never_silently_wrong(self, dump_dir, short_collection):
        """Assembling features for a time the dump does not cover fails."""
        from repro.features import coin_feature_matrix

        source = as_source(FileDatasetSource(dump_dir))
        coin = np.array([int(source.coins.listed_coins(0, 1e9)[0])])
        with pytest.raises(SourceDataError):
            coin_feature_matrix(source.market, coin, 10**7)


class TestMalformedNumerics:
    """Bad numeric values must become SourceDataError, never ValueError."""

    def test_non_numeric_message_field(self, dump_dir, tmp_path):
        clone = _clone(dump_dir, tmp_path)
        lines = (clone / "messages.jsonl").read_text().splitlines()
        record = json.loads(lines[0])
        record["channel_id"] = "oops"
        lines[0] = json.dumps(record)
        (clone / "messages.jsonl").write_text("\n".join(lines) + "\n")
        with pytest.raises(SourceDataError, match="must be\\s+numeric"):
            FileDatasetSource(clone)

    def test_non_numeric_meta_field(self, dump_dir, tmp_path):
        clone = _clone(dump_dir, tmp_path)
        meta = json.loads((clone / "meta.json").read_text())
        meta["seed"] = "not-a-number"
        (clone / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(SourceDataError, match="numeric field is malformed"):
            FileDatasetSource(clone)
