"""Per-rule golden-fixture tests: each checker fires at the exact line
on its tripping fixture and stays silent on the clean one."""

from __future__ import annotations

import pytest

from repro.lint import run_lint


def hits(report, rule=None):
    """(rule, path, line) triples, optionally filtered to one rule."""
    return [
        (f.rule, f.path, f.line)
        for f in report.findings
        if rule is None or f.rule == rule
    ]


# -- LAYER -------------------------------------------------------------------


def test_layer001_and_layer002_fire_on_leaky_serving_module(make_tree):
    root = make_tree({"repro/serving/leak.py": "layering_bad.py"})
    report = run_lint(root)
    assert ("LAYER001", "repro/serving/leak.py", 2) in hits(report)
    assert ("LAYER001", "repro/serving/leak.py", 8) in hits(report)
    assert ("LAYER002", "repro/serving/leak.py", 4) in hits(report)


def test_layer_rules_silent_on_clean_serving_module(make_tree):
    root = make_tree({"repro/serving/clean.py": "layering_clean.py"})
    report = run_lint(root, rule_ids_filter=["LAYER"])
    assert report.findings == []


def test_layer001_fires_outside_serving_too(make_tree):
    # features/ and core/ were decoupled from the simulator in PR 4.
    root = make_tree({"repro/features/leak.py": "layering_bad.py"})
    report = run_lint(root, rule_ids_filter=["LAYER001"])
    assert ("LAYER001", "repro/features/leak.py", 2) in hits(report)


def test_layer001_ignores_unconstrained_layers(make_tree):
    # data/ may import the simulator: no finding.
    root = make_tree({"repro/data/uses_sim.py": "layering_bad.py"})
    report = run_lint(root, rule_ids_filter=["LAYER001"])
    assert report.findings == []


def test_layer003_reports_an_import_cycle(make_tree):
    root = make_tree({
        "repro/alpha.py": "cycle_a.py",
        "repro/beta.py": "cycle_b.py",
    })
    report = run_lint(root, rule_ids_filter=["LAYER003"])
    assert hits(report) == [("LAYER003", "repro/alpha.py", 2)]
    assert "repro.alpha <-> repro.beta" in report.findings[0].message


def test_layer003_no_cycle_without_the_back_edge(make_tree):
    root = make_tree({"repro/alpha.py": "cycle_a.py"})
    report = run_lint(root, rule_ids_filter=["LAYER003"])
    assert report.findings == []


# -- DEP ---------------------------------------------------------------------


def test_dep002_and_dep003_fire_in_the_serving_stack(make_tree):
    root = make_tree({"repro/serving/heavy.py": "deps_bad_serving.py"})
    report = run_lint(root)
    assert ("DEP002", "repro/serving/heavy.py", 2) in hits(report)
    # Lazy does not excuse the wrong home:
    assert ("DEP002", "repro/serving/heavy.py", 7) in hits(report)
    assert ("DEP003", "repro/serving/heavy.py", 3) in hits(report)
    [warning] = [f for f in report.findings if f.rule == "DEP003"]
    assert warning.severity == "warning"


def test_dep001_fires_on_import_time_heavy_import_in_allowed_home(make_tree):
    root = make_tree({"repro/ml/heavy.py": "deps_bad_ml.py"})
    report = run_lint(root)
    assert hits(report, "DEP001") == [("DEP001", "repro/ml/heavy.py", 2)]
    assert hits(report, "DEP002") == []


def test_dep_rules_silent_on_lazy_import_in_allowed_home(make_tree):
    root = make_tree({"repro/ml/clean.py": "deps_clean.py"})
    report = run_lint(root, rule_ids_filter=["DEP"])
    assert report.findings == []


# -- LOCK --------------------------------------------------------------------


def test_lock001_fires_on_unlocked_mutation(make_tree):
    root = make_tree({"repro/serving/counter.py": "locks_bad.py"})
    report = run_lint(root, rule_ids_filter=["LOCK"])
    assert hits(report) == [("LOCK001", "repro/serving/counter.py", 15)]
    assert "Counter.count" in report.findings[0].message


def test_lock001_silent_when_every_mutation_holds_the_lock(make_tree):
    root = make_tree({"repro/serving/counter.py": "locks_clean.py"})
    report = run_lint(root, rule_ids_filter=["LOCK"])
    assert report.findings == []


def test_lock001_applies_outside_the_serving_stack_too(make_tree):
    # Lock discipline is not path-scoped: a racy class is racy anywhere.
    root = make_tree({"repro/analysis/counter.py": "locks_bad.py"})
    report = run_lint(root, rule_ids_filter=["LOCK"])
    assert hits(report) == [("LOCK001", "repro/analysis/counter.py", 15)]


# -- DET ---------------------------------------------------------------------


def test_det_rules_fire_in_a_scoring_path(make_tree):
    root = make_tree({"repro/serving/det.py": "det_bad.py"})
    report = run_lint(root, rule_ids_filter=["DET"])
    assert hits(report) == [
        ("DET001", "repro/serving/det.py", 8),
        ("DET002", "repro/serving/det.py", 9),
        ("DET002", "repro/serving/det.py", 10),
        ("DET003", "repro/serving/det.py", 11),
    ]


def test_det_rules_silent_on_deterministic_counterparts(make_tree):
    root = make_tree({"repro/serving/det.py": "det_clean.py"})
    report = run_lint(root, rule_ids_filter=["DET"])
    assert report.findings == []


@pytest.mark.parametrize("relpath", [
    "repro/telemetry/stamp.py",   # allowlisted: timestamps are its job
    "repro/store/stamp.py",
    "repro/registry/stamp.py",
    "repro/analysis/stamp.py",    # out of scope entirely
])
def test_det_rules_respect_scope_and_allowlist(make_tree, relpath):
    root = make_tree({relpath: "det_bad.py"})
    report = run_lint(root, rule_ids_filter=["DET"])
    assert report.findings == []


# -- WIRE --------------------------------------------------------------------


def test_wire001_fires_on_unregistered_codes(make_tree):
    root = make_tree({
        "repro/gateway/schema.py": "wire_schema.py",
        "repro/gateway/handlers.py": "wire_bad.py",
    })
    report = run_lint(root, rule_ids_filter=["WIRE001"])
    assert hits(report) == [
        ("WIRE001", "repro/gateway/handlers.py", 13),  # string literal
        ("WIRE001", "repro/gateway/handlers.py", 17),  # unregistered E_*
    ]


def test_wire002_fires_on_nonconforming_metric_names(make_tree):
    root = make_tree({
        "repro/gateway/schema.py": "wire_schema.py",
        "repro/gateway/handlers.py": "wire_bad.py",
    })
    report = run_lint(root, rule_ids_filter=["WIRE002"])
    assert hits(report) == [
        ("WIRE002", "repro/gateway/handlers.py", 6),   # counter sans _total
        ("WIRE002", "repro/gateway/handlers.py", 7),   # histogram sans _seconds
        ("WIRE002", "repro/gateway/handlers.py", 8),   # gauge ending _total
        ("WIRE002", "repro/gateway/handlers.py", 9),   # not snake_case
    ]


def test_wire002_enforces_signal_series_prefix(make_tree):
    # repro.signals owns the signal_* namespace: an off-prefix metric in
    # the subsystem fires even though its suffix conventions are fine.
    root = make_tree({"repro/signals/metrics.py": "wire_signals_bad.py"})
    report = run_lint(root, rule_ids_filter=["WIRE002"])
    assert hits(report) == [("WIRE002", "repro/signals/metrics.py", 5)]
    assert "signal_" in report.findings[0].message


def test_wire002_silent_on_prefixed_signal_metrics(make_tree):
    root = make_tree({"repro/signals/metrics.py": "wire_signals_clean.py"})
    report = run_lint(root, rule_ids_filter=["WIRE002"])
    assert report.findings == []


def test_wire002_prefix_not_enforced_outside_the_owner(make_tree):
    # The same off-prefix metric elsewhere is fine — the reservation only
    # binds the owning subsystem.
    root = make_tree({"repro/serving/metrics.py": "wire_signals_bad.py"})
    report = run_lint(root, rule_ids_filter=["WIRE002"])
    assert report.findings == []


def test_wire_rules_silent_on_conforming_module(make_tree):
    root = make_tree({
        "repro/gateway/schema.py": "wire_schema.py",
        "repro/gateway/clean.py": "wire_clean.py",
    })
    report = run_lint(root, rule_ids_filter=["WIRE"])
    assert report.findings == []


def test_wire001_against_the_real_schema(make_tree, tmp_path):
    """Regression for the demoted runtime assert: a made-up error code
    must fail `repro lint` statically, with the *production* schema."""
    import shutil
    from pathlib import Path

    repo_src = Path(__file__).resolve().parents[2] / "src"
    root = make_tree({"repro/gateway/rogue.py": "wire_bad.py"})
    dest = root / "repro/gateway/schema.py"
    shutil.copy(repo_src / "repro/gateway/schema.py", dest)
    report = run_lint(root, rule_ids_filter=["WIRE001"])
    lines = [f.line for f in report.findings
             if f.path == "repro/gateway/rogue.py"]
    assert 13 in lines  # GatewayFault("made_up_code", ...)
    assert 17 in lines  # E_ROGUE is not one of the real constants
