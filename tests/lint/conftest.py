"""Shared fixture machinery for the lint tests.

Golden fixture files live in ``tests/lint/fixtures/``; each test copies
a handful of them into a throwaway source tree at the *relative paths
that make the rule under test applicable* (the layering and dependency
rules key on dotted module names, so placement is part of the fixture).
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def make_tree(tmp_path):
    """Build a lintable source tree: {relative path: fixture file name}."""

    def build(mapping: dict[str, str]) -> Path:
        root = tmp_path / "tree"
        root.mkdir(exist_ok=True)
        for relpath, fixture_name in mapping.items():
            dest = root / relpath
            dest.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy(FIXTURES / fixture_name, dest)
        return root

    return build
