"""Fixture: the deterministic counterparts of every hazard."""
import time
import numpy as np


def score(candidates, seed):
    started = time.perf_counter()
    rng = np.random.default_rng(seed)
    order = sorted(set(candidates))
    return started, rng, order
