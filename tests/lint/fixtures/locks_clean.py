"""Fixture: every mutation of the guarded attribute holds the lock."""
import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self.label = ""

    def bump(self):
        with self._lock:
            self.count += 1

    def reset(self):
        with self._lock:
            self.count = 0

    def rename(self, label):
        # Never mutated under the lock anywhere: not a guarded attr.
        self.label = label
