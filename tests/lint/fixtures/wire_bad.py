"""Fixture: wire-contract drift — bad metric names and rogue codes."""
from repro.gateway.schema import E_ROGUE, GatewayFault


def instrument(metrics):
    metrics.counter("requests")
    metrics.histogram("rank_latency_ms")
    metrics.gauge("reloads_total")
    metrics.counter("Bad-Name")


def handle():
    raise GatewayFault("made_up_code", 400, "nope")


def rewrap():
    raise GatewayFault(E_ROGUE, 500, "boom")
