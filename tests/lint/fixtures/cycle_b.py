"""Fixture: the other half of an import cycle."""
import repro.alpha


def pong():
    return repro.alpha.ping()
