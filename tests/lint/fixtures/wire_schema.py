"""Fixture: a miniature wire schema (mirrors repro/gateway/schema.py)."""
E_BAD_REQUEST = "bad_request"
E_INTERNAL = "internal"
E_ROGUE = "rogue"

ERROR_CODES = frozenset({E_BAD_REQUEST, E_INTERNAL})


class GatewayFault(Exception):
    def __init__(self, code, status, message):
        self.code = code
        self.status = status
        self.message = message
