"""Fixture: a repro.signals module squatting outside its series prefix."""


def instrument(metrics):
    metrics.counter("evaluations_total")
    metrics.histogram("signal_compute_seconds")
