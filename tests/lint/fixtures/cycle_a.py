"""Fixture: one half of an import cycle."""
import repro.beta


def ping():
    return repro.beta.pong()
