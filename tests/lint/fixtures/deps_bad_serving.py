"""Fixture: a serving module violating the dependency policy."""
from scipy import sparse
import requests


def lazy():
    import networkx
    return networkx, sparse, requests
