"""Fixture: an allowed home importing the heavy stack at import time."""
import networkx as nx

GRAPH_FACTORY = nx.DiGraph
