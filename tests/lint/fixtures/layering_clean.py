"""Fixture: a serving module with no simulator dependency."""
import json


def encode(payload):
    return json.dumps(payload, sort_keys=True)
