"""Fixture: the gated import done right — lazy, in an allowed home."""


def load():
    import networkx as nx
    return nx.DiGraph()
