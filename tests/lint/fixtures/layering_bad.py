"""Fixture: a serving module that leaks the simulator."""
import repro.simulation

WORLD_FACTORY = SyntheticWorld  # noqa: F821 — the reference is the point


def lazy_leak():
    from repro.simulation import world
    return world
