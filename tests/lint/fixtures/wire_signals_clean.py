"""Fixture: conforming repro.signals metrics — all under signal_*."""


def instrument(metrics):
    metrics.counter("signal_evaluations_total")
    metrics.histogram("signal_compute_seconds")
    metrics.gauge("signal_batteries")
