"""Fixture: determinism hazards in a scoring path."""
import random
import time
import numpy as np


def score(candidates):
    started = time.time()
    rng = np.random.default_rng()
    jitter = random.random()
    order = [c for c in set(candidates)]
    return started, rng, jitter, order
