"""Fixture: conforming metric names and registered error codes."""
from repro.gateway.schema import E_BAD_REQUEST, GatewayFault


def instrument(metrics):
    metrics.counter("requests_total")
    metrics.histogram("rank_latency_seconds")
    metrics.gauge("inflight_requests")
    metrics.counter(f"service_{0}_total")


def handle(fault):
    raise GatewayFault(E_BAD_REQUEST, 400, "bad")


def passthrough(fault):
    # Dynamic first argument: carries an already-validated code.
    raise GatewayFault(fault.code, fault.status, fault.message)
