"""Engine semantics: suppressions, baselines, rule selection, project
loading edge cases."""

from __future__ import annotations

import json

import pytest

from repro.lint import (
    BaselineError,
    ProjectError,
    UnknownRuleError,
    load_project,
    run_lint,
    write_baseline,
)


def _write(root, relpath, text):
    dest = root / relpath
    dest.parent.mkdir(parents=True, exist_ok=True)
    dest.write_text(text, encoding="utf-8")
    return dest


# -- suppressions ------------------------------------------------------------


def test_inline_allow_suppresses_exactly_that_rule(tmp_path):
    _write(tmp_path / "tree", "repro/serving/leak.py",
           "import repro.simulation  # repro-lint: allow[LAYER001]\n")
    report = run_lint(tmp_path / "tree")
    assert report.findings == []
    assert report.suppressed == 1


def test_inline_allow_for_a_different_rule_does_not_suppress(tmp_path):
    _write(tmp_path / "tree", "repro/serving/leak.py",
           "import repro.simulation  # repro-lint: allow[DET001]\n")
    report = run_lint(tmp_path / "tree")
    assert [f.rule for f in report.findings] == ["LAYER001"]
    assert report.suppressed == 0


def test_inline_allow_star_suppresses_everything_on_the_line(tmp_path):
    _write(tmp_path / "tree", "repro/serving/leak.py",
           "import repro.simulation  # repro-lint: allow[*]\n")
    report = run_lint(tmp_path / "tree")
    assert report.findings == []
    assert report.suppressed == 1


def test_suppression_on_another_line_does_not_apply(tmp_path):
    _write(tmp_path / "tree", "repro/serving/leak.py",
           "# repro-lint: allow[LAYER001]\nimport repro.simulation\n")
    report = run_lint(tmp_path / "tree")
    assert [f.rule for f in report.findings] == ["LAYER001"]


# -- baseline ----------------------------------------------------------------


def test_baselined_findings_are_reported_but_do_not_fail(tmp_path):
    root = tmp_path / "tree"
    _write(root, "repro/serving/leak.py", "import repro.simulation\n")
    baseline = tmp_path / "baseline.json"

    fresh = run_lint(root)
    assert fresh.exit_code() == 2
    write_baseline(baseline, fresh.findings)

    rerun = run_lint(root, baseline_path=baseline)
    assert rerun.findings == []
    assert [f.rule for f in rerun.baselined] == ["LAYER001"]
    assert rerun.exit_code() == 0
    assert rerun.exit_code(strict=True) == 0


def test_baseline_fingerprint_survives_line_moves(tmp_path):
    root = tmp_path / "tree"
    _write(root, "repro/serving/leak.py", "import repro.simulation\n")
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, run_lint(root).findings)

    # Push the finding down two lines: same fingerprint, still baselined.
    _write(root, "repro/serving/leak.py",
           "\n\nimport repro.simulation\n")
    rerun = run_lint(root, baseline_path=baseline)
    assert rerun.findings == []
    assert [f.line for f in rerun.baselined] == [3]


def test_new_violations_are_not_covered_by_the_baseline(tmp_path):
    root = tmp_path / "tree"
    _write(root, "repro/serving/leak.py", "import repro.simulation\n")
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, run_lint(root).findings)

    _write(root, "repro/gateway/leak.py", "import repro.simulation\n")
    rerun = run_lint(root, baseline_path=baseline)
    assert [f.path for f in rerun.findings] == ["repro/gateway/leak.py"]
    assert rerun.exit_code() == 2


def test_missing_baseline_file_is_an_empty_baseline(tmp_path):
    root = tmp_path / "tree"
    _write(root, "repro/serving/ok.py", "import json\n")
    report = run_lint(root, baseline_path=tmp_path / "nope.json")
    assert report.findings == []


def test_malformed_baseline_raises(tmp_path):
    root = tmp_path / "tree"
    _write(root, "repro/serving/ok.py", "import json\n")
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"findings": "not-a-list"}))
    with pytest.raises(BaselineError):
        run_lint(root, baseline_path=bad)


# -- rule selection ----------------------------------------------------------


def test_rule_filter_accepts_family_and_concrete_ids(tmp_path):
    root = tmp_path / "tree"
    _write(root, "repro/serving/leak.py",
           "import repro.simulation\nimport scipy\n")
    everything = run_lint(root)
    assert {f.rule for f in everything.findings} == {"LAYER001", "DEP002"}
    only_dep = run_lint(root, rule_ids_filter=["DEP"])
    assert {f.rule for f in only_dep.findings} == {"DEP002"}
    only_layer = run_lint(root, rule_ids_filter=["LAYER001"])
    assert {f.rule for f in only_layer.findings} == {"LAYER001"}


def test_unknown_rule_id_raises(tmp_path):
    root = tmp_path / "tree"
    _write(root, "repro/ok.py", "import json\n")
    with pytest.raises(UnknownRuleError):
        run_lint(root, rule_ids_filter=["NOPE999"])


# -- project loading ---------------------------------------------------------


def test_package_dir_resolves_to_parent(tmp_path):
    root = tmp_path / "tree"
    _write(root, "repro/__init__.py", "")
    _write(root, "repro/serving/leak.py", "import repro.simulation\n")
    # Linting the package dir and the containing dir agree.
    from_pkg = run_lint(root / "repro")
    from_root = run_lint(root)
    assert [f.fingerprint() for f in from_pkg.findings] == \
        [f.fingerprint() for f in from_root.findings]


def test_syntax_error_is_a_project_error(tmp_path):
    root = tmp_path / "tree"
    _write(root, "repro/broken.py", "def nope(:\n")
    with pytest.raises(ProjectError):
        run_lint(root)


def test_missing_root_is_a_project_error(tmp_path):
    with pytest.raises(ProjectError):
        run_lint(tmp_path / "does-not-exist")


def test_import_graph_classifies_laziness(tmp_path):
    root = tmp_path / "tree"
    _write(root, "repro/mod.py", (
        "from typing import TYPE_CHECKING\n"
        "import json\n"
        "if TYPE_CHECKING:\n"
        "    import csv\n"
        "def f():\n"
        "    import math\n"
    ))
    project = load_project(root)
    records = {r.target: r for r in project.imports["repro.mod"]}
    assert records["json"].at_import_time
    assert records["csv"].type_checking
    assert records["math"].lazy and not records["math"].at_import_time


def test_relative_imports_resolve_against_the_package(tmp_path):
    root = tmp_path / "tree"
    _write(root, "repro/pkg/__init__.py", "")
    _write(root, "repro/pkg/a.py", "x = 1\n")
    _write(root, "repro/pkg/b.py", "from . import a\nfrom .a import x\n")
    project = load_project(root)
    targets = sorted(r.target for r in project.imports["repro.pkg.b"])
    assert targets == ["repro.pkg.a", "repro.pkg.a"]
