"""The real source tree passes its own linter, strictly, with an empty
baseline — the acceptance bar for the serving stack."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_passes_strict_lint():
    report = run_lint(REPO_ROOT / "src",
                      baseline_path=REPO_ROOT / "lint-baseline.json")
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.findings == [], f"fresh lint findings:\n{rendered}"
    assert report.exit_code(strict=True) == 0


def test_checked_in_baseline_is_empty():
    payload = json.loads(
        (REPO_ROOT / "lint-baseline.json").read_text(encoding="utf-8"))
    assert payload == {"version": 1, "findings": []}


def test_lint_covers_the_whole_tree():
    report = run_lint(REPO_ROOT / "src")
    # The tree has ~130 modules; a collapsed count means the loader broke.
    assert report.modules > 100
