"""CLI contract: flags, exit codes, JSON output, baseline workflow."""

from __future__ import annotations

import json

from repro.cli import main


def _write(root, relpath, text):
    dest = root / relpath
    dest.parent.mkdir(parents=True, exist_ok=True)
    dest.write_text(text, encoding="utf-8")
    return dest


def _leaky_tree(tmp_path):
    root = tmp_path / "tree"
    _write(root, "repro/serving/leak.py", "import repro.simulation\n")
    _write(root, "repro/serving/warn.py", "import requests\n")
    return root


def test_lint_exit_codes_plain_vs_strict(tmp_path, capsys):
    root = _leaky_tree(tmp_path)
    # error finding present -> 2 either way
    assert main(["lint", str(root)]) == 2
    capsys.readouterr()

    # warnings only: plain passes, --strict fails
    warn_only = tmp_path / "warn"
    _write(warn_only, "repro/serving/warn.py", "import requests\n")
    assert main(["lint", str(warn_only)]) == 0
    capsys.readouterr()
    assert main(["lint", "--strict", str(warn_only)]) == 2


def test_lint_clean_tree_exits_zero(tmp_path, capsys):
    root = tmp_path / "tree"
    _write(root, "repro/serving/fine.py", "import json\n")
    assert main(["lint", "--strict", str(root)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_lint_json_output_is_machine_readable(tmp_path, capsys):
    root = _leaky_tree(tmp_path)
    code = main(["lint", "--json", "--strict", str(root)])
    payload = json.loads(capsys.readouterr().out)
    assert code == 2
    assert payload["exit_code"] == 2
    assert payload["strict"] is True
    rules = {f["rule"] for f in payload["findings"]}
    assert rules == {"LAYER001", "DEP003"}
    [layer] = [f for f in payload["findings"] if f["rule"] == "LAYER001"]
    assert layer["path"] == "repro/serving/leak.py"
    assert layer["line"] == 1
    assert layer["severity"] == "error"


def test_lint_rule_filter(tmp_path, capsys):
    root = _leaky_tree(tmp_path)
    code = main(["lint", "--json", "--rule", "DEP", str(root)])
    payload = json.loads(capsys.readouterr().out)
    assert {f["rule"] for f in payload["findings"]} == {"DEP003"}
    assert code == 0  # DEP003 is warning severity; plain run passes


def test_lint_unknown_rule_is_a_usage_error(tmp_path, capsys):
    root = _leaky_tree(tmp_path)
    assert main(["lint", "--rule", "BOGUS1", str(root)]) == 3
    assert "unknown rule" in capsys.readouterr().err


def test_lint_write_baseline_then_clean_run(tmp_path, capsys):
    root = _leaky_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert main(["lint", "--baseline", str(baseline),
                 "--write-baseline", str(root)]) == 0
    capsys.readouterr()
    payload = json.loads(baseline.read_text())
    assert payload["version"] == 1
    assert len(payload["findings"]) == 2

    # Grandfathered: strict passes, findings reported as baselined.
    assert main(["lint", "--strict", "--baseline", str(baseline),
                 str(root)]) == 0
    out = capsys.readouterr().out
    assert "[baselined]" in out

    # A new violation still fails.
    _write(root, "repro/gateway/leak.py", "import repro.simulation\n")
    assert main(["lint", "--strict", "--baseline", str(baseline),
                 str(root)]) == 2


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rid in ("LAYER001", "LAYER002", "LAYER003", "DEP001", "DEP002",
                "DEP003", "LOCK001", "DET001", "DET002", "DET003",
                "WIRE001", "WIRE002"):
        assert rid in out


def test_lint_suppression_counts_in_summary(tmp_path, capsys):
    root = tmp_path / "tree"
    _write(root, "repro/serving/leak.py",
           "import repro.simulation  # repro-lint: allow[LAYER001]\n")
    assert main(["lint", "--strict", str(root)]) == 0
    assert "1 suppressed" in capsys.readouterr().out


def test_made_up_error_code_fails_lint(tmp_path, capsys):
    """Satellite regression: the schema assert was demoted to a debug
    aid because this — a rogue code failing `repro lint` — is now the
    enforced contract."""
    from pathlib import Path
    import shutil

    repo_src = Path(__file__).resolve().parents[2] / "src"
    root = tmp_path / "tree"
    (root / "repro/gateway").mkdir(parents=True)
    shutil.copy(repo_src / "repro/gateway/schema.py",
                root / "repro/gateway/schema.py")
    _write(root, "repro/gateway/rogue.py", (
        "from repro.gateway.schema import GatewayFault\n"
        "def explode():\n"
        "    raise GatewayFault('made_up_code', 500, 'boom')\n"
    ))
    assert main(["lint", "--strict", str(root)]) == 2
    out = capsys.readouterr().out
    assert "WIRE001" in out
    assert "made_up_code" in out
