"""Per-signal golden values on hand-built 72-hour candle grids."""

from __future__ import annotations

import numpy as np
import pytest

from repro.signals import (
    EPS,
    SIGNAL_LOOKBACK_HOURS,
    SIGNAL_NAMES,
    MomentumDivergence,
    PriceRunup,
    TurnoverImbalance,
    VolatilityCompression,
    VolumePriceDecoupling,
    VolumeSurge,
    default_signals,
)

H = SIGNAL_LOOKBACK_HOURS  # 72


def flat_grids(price: float = 0.0, volume: float = 1.0):
    return (np.full((1, H), price), np.full((1, H), volume))


class TestVolumeSurge:
    def test_flat_volume_scores_zero(self):
        log_close, volume = flat_grids()
        assert VolumeSurge().compute(log_close, volume) == pytest.approx(0.0)

    def test_recent_surge_is_log_ratio_to_own_norm(self):
        log_close, volume = flat_grids()
        volume[0, -6:] = 3.0
        overall = (66 * 1.0 + 6 * 3.0) / H
        expected = np.log((3.0 + EPS) / (overall + EPS))
        assert VolumeSurge().compute(log_close, volume)[0] \
            == pytest.approx(expected)

    def test_dead_market_is_finite(self):
        log_close, volume = flat_grids(volume=0.0)
        score = VolumeSurge().compute(log_close, volume)
        assert np.isfinite(score).all() and score[0] == pytest.approx(0.0)


class TestVolumePriceDecoupling:
    def test_surge_with_pinned_price_equals_volume_surge(self):
        log_close, volume = flat_grids()
        volume[0, -6:] = 3.0
        surge = VolumeSurge().compute(log_close, volume)
        assert VolumePriceDecoupling().compute(log_close, volume)[0] \
            == pytest.approx(surge[0])

    def test_price_move_discounts_the_surge(self):
        log_close, volume = flat_grids()
        volume[0, -6:] = 3.0
        log_close[0, -6:] = np.linspace(0.01, 0.06, 6)  # 6 % rally
        surge = VolumeSurge().compute(log_close, volume)[0]
        expected = surge - 12.0 * 0.06
        assert VolumePriceDecoupling().compute(log_close, volume)[0] \
            == pytest.approx(expected)


class TestVolatilityCompression:
    def test_flat_series_scores_zero(self):
        log_close, volume = flat_grids()
        assert VolatilityCompression().compute(log_close, volume)[0] \
            == pytest.approx(0.0)

    def test_quiet_recent_window_scores_positive(self):
        log_close, volume = flat_grids()
        # Alternating +-1 % returns early on, dead flat for the final 12
        # return columns (the pre-ignition squeeze).
        wiggle = 0.01 * (np.arange(H) % 2)
        wiggle[-13:] = wiggle[-13]
        log_close[0] = wiggle
        returns = np.diff(log_close[0])
        expected = np.log((returns.std() + EPS) / (0.0 + EPS))
        score = VolatilityCompression().compute(log_close, volume)[0]
        assert score == pytest.approx(expected)
        assert score > 5.0

    def test_noisy_recent_window_scores_negative(self):
        log_close, volume = flat_grids()
        noisy = np.zeros(H)
        noisy[-12:] = 0.05 * (np.arange(12) % 2)
        log_close[0] = noisy
        assert VolatilityCompression().compute(log_close, volume)[0] < 0.0


class TestPriceRunup:
    def test_linear_ramp_measures_window_drift(self):
        log_close, volume = flat_grids()
        log_close[0] = 0.01 * np.arange(H)
        assert PriceRunup().compute(log_close, volume)[0] \
            == pytest.approx(0.01 * 60)

    def test_flat_price_scores_zero(self):
        log_close, volume = flat_grids()
        assert PriceRunup().compute(log_close, volume)[0] == 0.0


class TestTurnoverImbalance:
    def test_buy_heavy_tape_scores_positive_share(self):
        log_close, volume = flat_grids()
        # Up-hours (odd columns) carry 3x the volume of down-hours.
        log_close[0] = 0.01 * (np.arange(H) % 2)
        volume[0] = np.where(np.arange(H) % 2 == 1, 3.0, 1.0)
        # Last 24 pairs: 12 up-hours at 3.0, 12 down-hours at 1.0.
        expected = (12 * 3.0 - 12 * 1.0) / (12 * 3.0 + 12 * 1.0 + EPS)
        assert TurnoverImbalance().compute(log_close, volume)[0] \
            == pytest.approx(expected)

    def test_flat_price_counts_as_sell_side(self):
        log_close, volume = flat_grids()
        assert TurnoverImbalance().compute(log_close, volume)[0] \
            == pytest.approx(-1.0, abs=1e-6)


class TestMomentumDivergence:
    def test_fresh_breakout_beats_old_trend(self):
        log_close, volume = flat_grids()
        ramp = np.zeros(H)
        ramp[-6:] = 0.02 * np.arange(1, 7)  # climbing only in the last 6 h
        log_close[0] = ramp
        short = 0.12 / 6
        long = 0.12 / 48
        assert MomentumDivergence().compute(log_close, volume)[0] \
            == pytest.approx(short - long)

    def test_steady_trend_scores_zero(self):
        log_close, volume = flat_grids()
        log_close[0] = 0.01 * np.arange(H)
        assert MomentumDivergence().compute(log_close, volume)[0] \
            == pytest.approx(0.0)


def test_default_battery_order_and_names():
    battery = default_signals()
    assert tuple(s.name for s in battery) == SIGNAL_NAMES
    assert SIGNAL_NAMES == (
        "volume_surge", "volume_price_decoupling", "volatility_compression",
        "price_runup", "turnover_imbalance", "momentum_divergence",
    )


def test_signals_are_vectorized_over_coins():
    log_close = np.tile(0.01 * np.arange(H), (5, 1))
    volume = np.ones((5, H))
    for signal in default_signals():
        assert signal.compute(log_close, volume).shape == (5,)
