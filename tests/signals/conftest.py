"""Shared fixtures for the signal-engine tests.

``GridMarket`` serves hand-built ``(n_coins, H)`` candle tables so the
golden-value tests control every cell; the phase-world fixtures build the
accumulation/ignition scenario (short horizon keeps the exported dump
small) once per session.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import collect
from repro.simulation import generate_phase_world
from repro.sources import SyntheticWorldSource, export_synthetic_dump
from repro.utils import ReproConfig


class GridMarket:
    """A market oracle backed by explicit hour-indexed candle tables."""

    def __init__(self, log_close, volume, first_hour: int = 0):
        self._log_close = np.asarray(log_close, dtype=np.float64)
        self._volume = np.asarray(volume, dtype=np.float64)
        self.first_hour = first_hour

    def _columns(self, hours):
        return (np.asarray(hours) - self.first_hour).astype(np.int64)

    def log_close(self, coin_ids, hours):
        return self._log_close[np.asarray(coin_ids, dtype=np.int64),
                               self._columns(hours)]

    def hourly_volume(self, coin_ids, hours):
        return self._volume[np.asarray(coin_ids, dtype=np.int64),
                            self._columns(hours)]


@pytest.fixture
def grid_market_factory():
    """Build a GridMarket whose hours 0..H-1 map to table columns.

    Evaluating at ``time = H + 0.5`` makes the signal window exactly the
    last 72 columns (anchor ``H - 1``).
    """

    def build(log_close, volume):
        return GridMarket(log_close, volume)

    return build


@pytest.fixture(scope="session")
def phase_world():
    return generate_phase_world(ReproConfig.tiny().with_(horizon_hours=2600))


@pytest.fixture(scope="session")
def phase_source(phase_world):
    return SyntheticWorldSource(phase_world)


@pytest.fixture(scope="session")
def phase_collection(phase_source):
    return collect(phase_source)


@pytest.fixture(scope="session")
def phase_dump(phase_world, phase_collection, tmp_path_factory):
    out = tmp_path_factory.mktemp("signal-dump") / "dump"
    export_synthetic_dump(phase_world, out, collection=phase_collection)
    return out
