"""SignalEngine — battery validation, grids, determinism, telemetry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.signals import (
    COMPOSITE_FEATURE,
    SIGNAL_LOOKBACK_HOURS,
    SIGNAL_NAMES,
    SignalEngine,
    SignalError,
    VolumeSurge,
    anchor_hour,
    lookback_hours,
)
from repro.telemetry import MetricsRegistry, set_default_registry

H = SIGNAL_LOOKBACK_HOURS


@pytest.fixture
def market(grid_market_factory):
    rng = np.random.default_rng(3)
    log_close = np.cumsum(rng.normal(0.0, 0.01, size=(4, H)), axis=1)
    volume = np.exp(rng.normal(0.0, 0.3, size=(4, H)))
    return grid_market_factory(np.round(log_close, 9), volume)


class TestAnchoring:
    def test_anchor_is_last_closed_hour(self):
        # An announcement inside hour 100 must only see candles through
        # hour 99 — the paper's "one hour before the pump" discipline.
        assert anchor_hour(100.7) == 99
        assert anchor_hour(100.0) == 99

    def test_lookback_grid_is_integer_hours(self):
        hours = lookback_hours(100.7)
        assert len(hours) == H
        assert hours[-1] == 99
        assert hours[0] == 99 - H + 1
        assert np.array_equal(hours, np.sort(hours))


class TestBattery:
    def test_empty_battery_rejected(self, market):
        with pytest.raises(SignalError, match="empty"):
            SignalEngine(market, signals=())

    def test_duplicate_names_rejected(self, market):
        with pytest.raises(SignalError, match="unique"):
            SignalEngine(market, signals=(VolumeSurge(), VolumeSurge()))

    def test_feature_names_are_prefixed_and_end_with_composite(self, market):
        engine = SignalEngine(market)
        assert engine.feature_names == tuple(
            f"signal_{name}" for name in SIGNAL_NAMES
        ) + (COMPOSITE_FEATURE,)


class TestEvaluate:
    def test_shapes(self, market):
        engine = SignalEngine(market)
        coins = np.array([0, 2, 3])
        assert engine.evaluate(coins, H + 0.5).shape == (3, 6)
        assert engine.composite(coins, H + 0.5).shape == (3,)
        assert engine.feature_block(coins, H + 0.5).shape == (3, 7)

    def test_deterministic_bit_for_bit(self, market):
        engine = SignalEngine(market)
        coins = np.arange(4)
        first = engine.feature_block(coins, H + 0.5)
        second = SignalEngine(market).feature_block(coins, H + 0.5)
        assert np.array_equal(first, second)

    def test_nan_candles_fail_loudly(self, grid_market_factory):
        log_close = np.zeros((2, H))
        volume = np.ones((2, H))
        log_close[1, 10] = np.nan
        engine = SignalEngine(grid_market_factory(log_close, volume))
        with pytest.raises(SignalError, match="non-finite"):
            engine.evaluate(np.array([0, 1]), H + 0.5)
        # The clean coin alone stays evaluable.
        assert np.isfinite(engine.evaluate(np.array([0]), H + 0.5)).all()

    def test_misshapen_market_fails_loudly(self):
        class Scalar:
            def log_close(self, coin_ids, hours):
                return np.float64(0.0)

            def hourly_volume(self, coin_ids, hours):
                return np.float64(1.0)

        with pytest.raises(SignalError, match="expected"):
            SignalEngine(Scalar()).evaluate(np.array([0]), H + 0.5)


class TestFromSource:
    def test_calls_coverage_validation(self, market):
        class Source:
            def __init__(self):
                self.market = market
                self.validated = 0

            def validate_signal_coverage(self):
                self.validated += 1

        source = Source()
        SignalEngine.from_source(source)
        assert source.validated == 1

    def test_validation_failure_propagates(self, market):
        class Holey:
            def __init__(self):
                self.market = market

            def validate_signal_coverage(self):
                raise SignalError("window [1, 72] is not covered")

        with pytest.raises(SignalError, match="not covered"):
            SignalEngine.from_source(Holey())


class TestTelemetry:
    def test_evaluations_are_counted_and_timed(self, market):
        registry = MetricsRegistry()
        previous = set_default_registry(registry)
        try:
            engine = SignalEngine(market)
            engine.feature_block(np.arange(3), H + 0.5)
            assert registry.counter(
                "signal_evaluations_total", ""
            ).value == 1
            assert registry.counter(
                "signal_coin_scores_total", ""
            ).value == 3 * 6
            histogram = registry.histogram("signal_compute_seconds", "")
            assert histogram.count == 1
        finally:
            set_default_registry(previous)
