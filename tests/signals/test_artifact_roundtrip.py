"""Signal-aware predictors through the registry: schema v2 roundtrips.

A model trained with signal channels must record them in its manifest,
rebuild its engine on load (against either backend), and rank announce-
ments bit-for-bit identically to the in-process original.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import (
    TargetCoinPredictor,
    Trainer,
    make_model,
    snn_config_for,
)
from repro.features import FeatureAssembler
from repro.registry import (
    SCHEMA_VERSION,
    ArtifactError,
    ArtifactIntegrityError,
    PredictorArtifact,
)
from repro.signals import SignalEngine
from repro.sources import FileDatasetSource


@pytest.fixture(scope="module")
def signal_predictor(phase_source, phase_collection):
    engine = SignalEngine.from_source(phase_source)
    assembler = FeatureAssembler(phase_source, phase_collection.dataset,
                                 signal_engine=engine)
    assembled = assembler.assemble()
    model = make_model("snn", snn_config_for(assembled), seed=0)
    Trainer(epochs=1, seed=0).fit(model, assembled.train,
                                  assembled.validation)
    return TargetCoinPredictor(phase_source, phase_collection.dataset,
                               model, assembler)


@pytest.fixture(scope="module")
def request_args(phase_collection):
    example = next(e for e in phase_collection.dataset.examples
                   if e.split == "test")
    return example.channel_id, 0, example.time


class TestManifest:
    def test_signal_channels_recorded(self, signal_predictor, tmp_path):
        artifact = signal_predictor.to_artifact()
        assert artifact.signal_channels \
            == signal_predictor.assembler.signal_engine.feature_names
        path = artifact.save(tmp_path / "aware")
        manifest = json.loads((path / "manifest.json").read_text())
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["features"]["signal_channels"] \
            == list(artifact.signal_channels)

    def test_message_only_records_empty_channels(self, phase_source,
                                                 phase_collection, tmp_path):
        assembler = FeatureAssembler(phase_source, phase_collection.dataset)
        assembled = assembler.assemble()
        model = make_model("snn", snn_config_for(assembled), seed=0)
        Trainer(epochs=1, seed=0).fit(model, assembled.train,
                                      assembled.validation)
        predictor = TargetCoinPredictor(
            phase_source, phase_collection.dataset, model, assembler
        )
        path = predictor.to_artifact().save(tmp_path / "message-only")
        loaded = PredictorArtifact.load(path)
        assert loaded.signal_channels == ()
        rebuilt = loaded.to_predictor(phase_source, phase_collection.dataset)
        assert rebuilt.assembler.signal_engine is None

    def test_missing_signal_channels_is_structural_corruption(
            self, signal_predictor, tmp_path):
        path = signal_predictor.to_artifact().save(tmp_path / "tampered")
        manifest_path = path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["features"]["signal_channels"]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ArtifactIntegrityError,
                           match="signal_channels"):
            PredictorArtifact.load(path)


class TestRoundtrip:
    def test_rankings_bit_identical_after_reload(self, signal_predictor,
                                                 phase_source,
                                                 phase_collection,
                                                 request_args, tmp_path):
        channel_id, exchange_id, time = request_args
        before = signal_predictor.rank(channel_id, exchange_id, time)
        path = signal_predictor.to_artifact().save(tmp_path / "aware")
        rebuilt = PredictorArtifact.load(path).to_predictor(
            phase_source, phase_collection.dataset
        )
        assert rebuilt.assembler.signal_engine is not None
        after = rebuilt.rank(channel_id, exchange_id, time)
        assert [s.coin_id for s in after.scores] \
            == [s.coin_id for s in before.scores]
        assert [s.probability for s in after.scores] \
            == [s.probability for s in before.scores]

    def test_loads_against_the_file_backend(self, signal_predictor,
                                            phase_collection, phase_dump,
                                            request_args, tmp_path):
        # An artifact trained against the synthetic world must serve from
        # the exported dump: the rebuilt engine computes bit-identical
        # signal channels (the subsystem's parity guarantee — base market
        # features go through the dump's decimal prices and are only
        # float-text close) and produces a full ranking.
        channel_id, exchange_id, time = request_args
        path = signal_predictor.to_artifact().save(tmp_path / "aware")
        rebuilt = PredictorArtifact.load(path).to_predictor(
            FileDatasetSource(phase_dump), phase_collection.dataset
        )
        before = signal_predictor.rank(channel_id, exchange_id, time)
        after = rebuilt.rank(channel_id, exchange_id, time)
        assert after.scores and len(after.scores) == len(before.scores)
        coins = np.array(sorted(s.coin_id for s in before.scores))
        assert np.array_equal(
            rebuilt.assembler.signal_engine.feature_block(coins, time),
            signal_predictor.assembler.signal_engine.feature_block(coins,
                                                                   time),
        )

    def test_signal_channel_drift_fails_loudly(self, signal_predictor,
                                               phase_source,
                                               phase_collection, tmp_path):
        artifact = signal_predictor.to_artifact()
        artifact.signal_channels = tuple(reversed(artifact.signal_channels))
        with pytest.raises(ArtifactError, match="signal drift"):
            artifact.to_predictor(phase_source, phase_collection.dataset)

    def test_scalers_cover_the_signal_columns(self, signal_predictor):
        assembler = signal_predictor.assembler
        n_numeric = len(assembler.numeric_feature_names)
        assert n_numeric == len(
            signal_predictor._numeric_scaler.mean_
        )
        assert assembler.numeric_feature_names[-1] == "signal_composite"
