"""CompositeScorer — squashing, weighting, interaction bonuses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.signals import (
    DEFAULT_INTERACTIONS,
    DEFAULT_SCALES,
    DEFAULT_WEIGHTS,
    SIGNAL_NAMES,
    CompositeScorer,
    Interaction,
)


@pytest.fixture
def scorer():
    return CompositeScorer(
        ("a", "b"),
        weights={"a": 2.0, "b": 0.5},
        scales={"a": 1.0, "b": 2.0},
        interactions=(Interaction("a", "b", 0.5, 10.0),),
    )


class TestSquash:
    def test_is_tanh_over_per_signal_scales(self, scorer):
        raw = np.array([[1.0, 2.0], [-3.0, 0.0]])
        expected = np.tanh(raw / np.array([1.0, 2.0]))
        assert np.array_equal(scorer.squash(raw), expected)

    def test_bounded(self, scorer):
        raw = np.array([[1e9, -1e9]])
        squashed = scorer.squash(raw)
        assert (np.abs(squashed) <= 1.0).all()


class TestComposite:
    def test_weighted_sum_without_bonus(self, scorer):
        raw = np.array([[0.2, -0.4]])
        squashed = np.tanh(raw / np.array([1.0, 2.0]))
        expected = 2.0 * squashed[0, 0] + 0.5 * squashed[0, 1]
        assert scorer.composite(raw)[0] == pytest.approx(expected)

    def test_bonus_applies_only_when_both_clear_threshold(self, scorer):
        both_high = np.array([[2.0, 4.0]])    # tanh(2), tanh(2) > 0.5
        one_high = np.array([[2.0, 0.0]])
        base = CompositeScorer(("a", "b"),
                               weights={"a": 2.0, "b": 0.5},
                               scales={"a": 1.0, "b": 2.0},
                               interactions=())
        assert scorer.composite(both_high)[0] == pytest.approx(
            base.composite(both_high)[0] + 10.0
        )
        assert scorer.composite(one_high)[0] == pytest.approx(
            base.composite(one_high)[0]
        )

    def test_vectorized_over_coins(self, scorer):
        raw = np.random.default_rng(0).normal(size=(50, 2))
        assert scorer.composite(raw).shape == (50,)


class TestValidation:
    def test_unknown_interaction_signal_rejected(self):
        with pytest.raises(ValueError, match="unknown signal"):
            CompositeScorer(("a",),
                            interactions=(Interaction("a", "ghost", 0.1, 1.0),))

    def test_non_positive_scale_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            CompositeScorer(("a",), scales={"a": 0.0}, interactions=())

    def test_accessors_report_effective_values(self):
        scorer = CompositeScorer(SIGNAL_NAMES)
        assert scorer.weight_of("volume_surge") \
            == DEFAULT_WEIGHTS["volume_surge"]
        assert scorer.scale_of("price_runup") == DEFAULT_SCALES["price_runup"]


def test_default_interactions_reference_real_signals():
    for interaction in DEFAULT_INTERACTIONS:
        assert interaction.first in SIGNAL_NAMES
        assert interaction.second in SIGNAL_NAMES
