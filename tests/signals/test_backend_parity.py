"""Signals across backends: bit-identical scores, up-front coverage checks.

The acceptance bar for the signal subsystem: the same announcement scored
through ``SyntheticWorldSource`` and through the ``FileDatasetSource``
dump exported from it produces bit-for-bit identical signal scores, and a
dump with candle holes fails loudly at engine construction — never with
NaN scores downstream.
"""

from __future__ import annotations

import shutil

import numpy as np
import pytest

from repro.signals import SignalEngine, SignalRanker
from repro.sources import FileDatasetSource, SourceDataError


def _lists_by_id(dataset):
    by_list = {}
    for example in dataset.examples:
        if example.split == "test":
            by_list.setdefault(example.list_id, []).append(example)
    return by_list


class TestBitParity:
    def test_feature_blocks_identical_across_backends(
            self, phase_source, phase_collection, phase_dump):
        file_source = FileDatasetSource(phase_dump)
        synth = SignalEngine.from_source(phase_source)
        filed = SignalEngine.from_source(file_source)
        lists = _lists_by_id(phase_collection.dataset)
        assert lists
        for rows in lists.values():
            coins = np.array([e.coin_id for e in rows])
            time = rows[0].time
            a = synth.feature_block(coins, time)
            b = filed.feature_block(coins, time)
            assert np.array_equal(a, b), "signal scores drifted across backends"
            assert np.isfinite(a).all()

    def test_heuristic_hr_identical_across_backends(
            self, phase_source, phase_collection, phase_dump):
        dataset = phase_collection.dataset
        synth_hr = SignalRanker(phase_source).evaluate(dataset)
        file_hr = SignalRanker(FileDatasetSource(phase_dump)).evaluate(dataset)
        assert synth_hr == file_hr


class TestHeuristicRanker:
    def test_phase_anatomy_is_detectable(self, phase_source, phase_collection):
        hr = SignalRanker(phase_source).evaluate(phase_collection.dataset)
        ks = sorted(hr)
        # Monotone in k, and the signals separate phase-world targets far
        # better than chance (each test list has ~25 candidates).
        assert all(hr[a] <= hr[b] for a, b in zip(ks, ks[1:]))
        assert hr[10] >= 0.5

    def test_rankings_are_sorted_and_exclude_pair_majors(self, phase_source,
                                                         phase_collection):
        from repro.markets import PAIR_SYMBOLS

        example = next(e for e in phase_collection.dataset.examples
                       if e.split == "test")
        ranking = SignalRanker(phase_source).rank(
            example.channel_id, 0, example.time
        )
        probs = [score.probability for score in ranking.scores]
        assert probs == sorted(probs, reverse=True)
        assert all(score.coin_id >= len(PAIR_SYMBOLS)
                   for score in ranking.scores)


class TestCoverageValidation:
    def test_full_dump_passes(self, phase_dump):
        checked = FileDatasetSource(phase_dump).validate_signal_coverage()
        assert checked > 0

    def test_uncovered_window_is_named(self, phase_dump):
        source = FileDatasetSource(phase_dump)
        # Hour 150 predates the exported grid (the first announcement is
        # later): the diagnostic must name the window and the recorded
        # range, not produce NaN scores.
        with pytest.raises(SourceDataError, match=r"not covered"):
            source.validate_signal_coverage(times=[150.0])

    def test_missing_candle_cell_is_named(self, phase_dump, phase_collection,
                                          tmp_path):
        broken = tmp_path / "broken"
        shutil.copytree(phase_dump, broken)
        sample = phase_collection.samples[0]
        pristine = FileDatasetSource(phase_dump)
        symbol = pristine.coins.symbols[sample.coin_id]
        hole_hour = int(np.floor(sample.time)) - 5
        candles = broken / "candles.csv"
        lines = candles.read_text().splitlines(keepends=True)
        keep = [line for line in lines
                if not line.startswith(f"{symbol},{hole_hour},")]
        assert len(keep) == len(lines) - 1, "fixture hole not punched"
        candles.write_text("".join(keep))
        with pytest.raises(SourceDataError, match=symbol):
            FileDatasetSource(broken).validate_signal_coverage(
                times=[sample.time]
            )

    def test_engine_construction_runs_validation(self, phase_dump, tmp_path):
        broken = tmp_path / "truncated"
        shutil.copytree(phase_dump, broken)
        candles = broken / "candles.csv"
        lines = candles.read_text().splitlines(keepends=True)
        # Drop the last quarter of the candle grid wholesale.
        candles.write_text("".join(lines[: 3 * len(lines) // 4]))
        with pytest.raises(SourceDataError):
            SignalEngine.from_source(FileDatasetSource(broken))
