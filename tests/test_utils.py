"""Tests for the utils substrate: hash RNG, config, time, tabulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import (
    Clock,
    ReproConfig,
    Scale,
    format_table,
    hash_normal,
    hash_uniform,
    hash_uint64,
    to_timestamp,
)
from repro.utils.hashrng import hash_choice


class TestHashRng:
    def test_deterministic(self):
        assert int(hash_uint64(1, 2, 3)) == int(hash_uint64(1, 2, 3))

    def test_distinct_keys_distinct_values(self):
        a = hash_uint64(np.arange(10_000))
        assert len(np.unique(a)) == 10_000

    def test_key_order_matters(self):
        assert int(hash_uint64(1, 2)) != int(hash_uint64(2, 1))

    def test_broadcasting(self):
        out = hash_uniform(np.arange(4)[:, None], np.arange(3)[None, :])
        assert out.shape == (4, 3)

    def test_uniform_range_and_moments(self):
        u = hash_uniform(7, np.arange(200_000))
        assert (u >= 0).all() and (u < 1).all()
        assert abs(u.mean() - 0.5) < 0.01
        assert abs(u.var() - 1 / 12) < 0.01

    def test_normal_moments(self):
        z = hash_normal(3, np.arange(200_000))
        assert abs(z.mean()) < 0.02
        assert abs(z.std() - 1.0) < 0.02

    def test_negative_keys_supported(self):
        assert np.isfinite(hash_uniform(-5, -10))

    def test_requires_keys(self):
        with pytest.raises(ValueError):
            hash_uint64()

    def test_choice_in_range(self):
        c = hash_choice(7, np.arange(1000))
        assert (c >= 0).all() and (c < 7).all()

    def test_choice_invalid_n(self):
        with pytest.raises(ValueError):
            hash_choice(0, 1)

    @settings(max_examples=40, deadline=None)
    @given(a=st.integers(min_value=-2**40, max_value=2**40),
           b=st.integers(min_value=-2**40, max_value=2**40))
    def test_property_stable_and_bounded(self, a, b):
        u1 = float(hash_uniform(a, b))
        u2 = float(hash_uniform(a, b))
        assert u1 == u2
        assert 0.0 <= u1 < 1.0


class TestConfig:
    def test_paper_scale_larger_than_small(self):
        small, paper = ReproConfig.small(), ReproConfig.paper()
        assert paper.n_coins > small.n_coins
        assert paper.n_events > small.n_events

    def test_for_scale(self):
        assert ReproConfig.for_scale(Scale.PAPER).n_events == 709
        assert ReproConfig.for_scale(Scale.SMALL).n_events < 709

    def test_with_overrides(self):
        config = ReproConfig.small().with_(seed=99)
        assert config.seed == 99
        assert config.n_coins == ReproConfig.small().n_coins

    def test_frozen(self):
        with pytest.raises(Exception):
            ReproConfig.small().seed = 1

    def test_env_scale(self, monkeypatch):
        from repro.utils import get_scale

        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert get_scale() is Scale.PAPER
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            get_scale()


class TestTime:
    def test_epoch_rendering(self):
        assert to_timestamp(0) == "2019-01-01 00:00"

    def test_day_rollover(self):
        assert to_timestamp(25, 30) == "2019-01-02 01:30"

    def test_year_rollover(self):
        assert to_timestamp(365 * 24) == "2020-01-01 00:00"

    def test_leap_year_2020(self):
        # 2020-02-29 exists: 2019 has 365 days; Feb 29 2020 is day 424.
        assert to_timestamp((365 + 59) * 24) == "2020-02-29 00:00"

    def test_clock_monotone(self):
        clock = Clock()
        clock.advance(5)
        assert clock.hour == 5
        with pytest.raises(ValueError):
            clock.advance(-1)


class TestTabulate:
    def test_basic_render(self):
        out = format_table(["a", "bb"], [[1, 2.5]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "2.500" in lines[2]

    def test_row_length_checked(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_title_prepended(self):
        out = format_table(["a"], [[1]], title="T")
        assert out.splitlines()[0] == "T"
