"""Tests for snowball exploration and pump-message detection."""

import numpy as np
import pytest

from repro.data import (
    ChannelExplorer,
    DETECTION_THRESHOLD,
    PumpMessageDetector,
    extract_invite_links,
    run_detection_pipeline,
)
from repro.simulation import SyntheticWorld
from repro.simulation.coins import EXCHANGE_NAMES
from repro.utils import ReproConfig

CFG = ReproConfig.tiny()


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld.generate(CFG)


@pytest.fixture(scope="module")
def explorer(world):
    return ChannelExplorer(world.channels, world.messages, max_hops=2)


class TestInviteLinks:
    def test_extracts_ids(self):
        assert extract_invite_links("join t.me/joinchat/123 now") == [123]

    def test_multiple_links(self):
        text = "t.me/joinchat/1 and t.me/joinchat/2"
        assert extract_invite_links(text) == [1, 2]

    def test_no_links(self):
        assert extract_invite_links("no links here") == []


class TestExploration:
    def test_dead_seeds_detected(self, world, explorer):
        result = explorer.explore(world.channels.seed_channel_ids())
        expected_dead = {
            c.channel_id for c in world.channels.pump_channels
            if c.is_seed and c.deleted
        }
        assert set(result.dead_seed_ids) == expected_dead

    def test_discovers_new_channels(self, world, explorer):
        result = explorer.explore(world.channels.seed_channel_ids())
        assert len(result.discovered_ids) > 0
        seeds = set(result.seed_ids)
        assert all(cid not in seeds for cid in result.discovered_ids)

    def test_hop_bound_respected(self, world, explorer):
        result = explorer.explore(world.channels.seed_channel_ids())
        assert max(result.hops.values()) <= 2

    def test_zero_hops_explores_only_seeds(self, world):
        explorer0 = ChannelExplorer(world.channels, world.messages, max_hops=0)
        result = explorer0.explore(world.channels.seed_channel_ids())
        alive_seeds = set(world.channels.seed_channel_ids(include_deleted=False))
        assert set(result.explored_ids) <= alive_seeds
        assert not result.discovered_ids

    def test_more_hops_finds_no_fewer(self, world):
        seeds = world.channels.seed_channel_ids()
        one = ChannelExplorer(world.channels, world.messages, max_hops=1).explore(seeds)
        two = ChannelExplorer(world.channels, world.messages, max_hops=2).explore(seeds)
        assert set(one.explored_ids) <= set(two.explored_ids)

    def test_collect_messages_only_from_explored(self, world, explorer):
        result = explorer.explore(world.channels.seed_channel_ids())
        collected = explorer.collect_messages(result)
        explored = set(result.explored_ids)
        assert all(m.channel_id in explored for m in collected)
        times = [m.time for m in collected]
        assert times == sorted(times)

    def test_invalid_hops_rejected(self, world):
        with pytest.raises(ValueError):
            ChannelExplorer(world.channels, world.messages, max_hops=-1)


class TestDetection:
    @pytest.fixture(scope="class")
    def outcome(self, world, explorer):
        result = explorer.explore(world.channels.seed_channel_ids())
        collected = explorer.collect_messages(result)
        return run_detection_pipeline(
            collected,
            coin_symbols=world.coins.symbols,
            exchange_names=EXCHANGE_NAMES[: CFG.n_exchanges],
            n_label=800,
            seed=CFG.seed,
        )

    def test_both_models_reported(self, outcome):
        assert set(outcome.reports) == {"lr", "rf"}

    def test_detection_quality_matches_paper_band(self, outcome):
        for report in outcome.reports.values():
            assert report.auc > 0.9
            assert report.f1 > 0.75
            assert report.recall > 0.8  # low threshold maximizes recall

    def test_filter_reduces_and_detection_reduces_further(self, outcome):
        assert outcome.n_filtered < outcome.n_total
        assert len(outcome.detected) <= outcome.n_filtered

    def test_detected_mostly_pump(self, outcome):
        truth = np.array([m.is_pump_message for m in outcome.detected])
        assert truth.mean() > 0.7

    def test_invalid_model_name(self):
        with pytest.raises(ValueError):
            PumpMessageDetector(model="svm")

    def test_detector_fit_predict_roundtrip(self):
        texts = ["pump now soon target", "hello weather nice"] * 30
        labels = [1.0, 0.0] * 30
        detector = PumpMessageDetector(model="lr").fit(texts, labels)
        probs = detector.predict_proba(["pump now soon target"])
        assert probs[0] > 0.5
