"""Tests for incremental dataset maintenance."""

import pytest

from repro.data import ChannelExplorer, run_detection_pipeline
from repro.data.updater import DatasetUpdater
from repro.simulation import SyntheticWorld
from repro.simulation.coins import EXCHANGE_NAMES
from repro.utils import ReproConfig

CFG = ReproConfig.tiny()


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld.generate(CFG)


@pytest.fixture(scope="module")
def setup(world):
    """Initial pipeline run on the first 60% of the timeline."""
    explorer = ChannelExplorer(world.channels, world.messages, max_hops=2)
    collected = explorer.collect_messages(
        explorer.explore(world.channels.seed_channel_ids())
    )
    cutoff = CFG.horizon_hours * 0.6
    early = [m for m in collected if m.time <= cutoff]
    late = [m for m in collected if m.time > cutoff]
    names = EXCHANGE_NAMES[: CFG.n_exchanges]
    outcome = run_detection_pipeline(early, world.coins.symbols, names,
                                     n_label=500, seed=0)
    return early, late, outcome, names


class TestDatasetUpdater:
    def test_update_appends_new_samples(self, world, setup):
        early, late, outcome, names = setup
        from repro.data import extract_samples, sessionize

        initial = extract_samples(sessionize(outcome.detected),
                                  world.coins.symbols, names)
        detector = self._refit_detector(early, world, names)
        updater = DatasetUpdater(detector, world.coins.symbols, names,
                                 samples=initial)
        before = len(updater.samples)
        result = updater.update(late)
        assert result.new_messages == len(late)
        assert result.new_detected > 0
        assert len(result.new_samples) > 0
        assert len(updater.samples) == before + len(result.new_samples)

    @staticmethod
    def _refit_detector(messages, world, names):
        from repro.data import PumpMessageDetector
        import numpy as np

        rng = np.random.default_rng(0)
        idx = rng.choice(len(messages), size=min(500, len(messages)),
                         replace=False)
        labelled = [messages[i] for i in idx]
        return PumpMessageDetector(model="rf").fit(
            [m.text for m in labelled],
            [float(m.is_pump_message) for m in labelled],
        )

    def test_empty_update_is_noop(self, world, setup):
        early, late, outcome, names = setup
        detector = self._refit_detector(early, world, names)
        updater = DatasetUpdater(detector, world.coins.symbols, names)
        result = updater.update([])
        assert result.new_messages == 0
        assert result.new_samples == []

    def test_duplicate_batches_are_idempotent(self, world, setup):
        early, late, outcome, names = setup
        detector = self._refit_detector(early, world, names)
        updater = DatasetUpdater(detector, world.coins.symbols, names)
        first = updater.update(late)
        count = len(updater.samples)
        second = updater.update(late)
        # Re-feeding the same batch yields no duplicate samples.
        assert len(updater.samples) == count
        assert not second.new_samples

    def test_samples_stay_sorted(self, world, setup):
        early, late, outcome, names = setup
        detector = self._refit_detector(early, world, names)
        updater = DatasetUpdater(detector, world.coins.symbols, names)
        updater.update(late[: len(late) // 2])
        updater.update(late[len(late) // 2:])
        times = [s.time for s in updater.samples]
        assert times == sorted(times)
