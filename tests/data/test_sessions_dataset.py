"""Tests for sessionization, sample extraction and dataset construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    PnDSample,
    TargetCoinDataset,
    collect,
    dataset_statistics,
    extract_samples,
    parse_release_symbol,
    sessionize,
)
from repro.simulation import Message, SyntheticWorld
from repro.utils import ReproConfig

CFG = ReproConfig.tiny()


def _msg(mid, channel, time, text="pump soon", kind="countdown"):
    return Message(mid, channel, time, text, kind)


class TestSessionize:
    def test_gap_splits_sessions(self):
        messages = [_msg(0, 1, 0.0), _msg(1, 1, 10.0), _msg(2, 1, 40.0)]
        sessions = sessionize(messages, gap_hours=24.0)
        assert [len(s.messages) for s in sessions] == [2, 1]

    def test_channels_never_mix(self):
        messages = [_msg(0, 1, 0.0), _msg(1, 2, 0.5)]
        sessions = sessionize(messages)
        assert len(sessions) == 2

    def test_unsorted_input_handled(self):
        messages = [_msg(0, 1, 50.0), _msg(1, 1, 0.0), _msg(2, 1, 1.0)]
        sessions = sessionize(messages)
        assert [len(s.messages) for s in sessions] == [2, 1]

    def test_invalid_gap(self):
        with pytest.raises(ValueError):
            sessionize([], gap_hours=0)

    @settings(max_examples=30, deadline=None)
    @given(
        times=st.lists(st.floats(min_value=0, max_value=5000), min_size=1,
                       max_size=40),
        gap=st.floats(min_value=0.5, max_value=48.0),
    )
    def test_property_session_invariants(self, times, gap):
        messages = [_msg(i, 7, t) for i, t in enumerate(times)]
        sessions = sessionize(messages, gap_hours=gap)
        # Every message lands in exactly one session.
        total = sum(len(s.messages) for s in sessions)
        assert total == len(messages)
        for session in sessions:
            ts = [m.time for m in session.messages]
            assert ts == sorted(ts)
            # No internal gap exceeds the threshold.
            assert all(b - a <= gap + 1e-9 for a, b in zip(ts, ts[1:]))


class TestReleaseParsing:
    SYMBOLS = {"EVX": 10, "NAS": 11, "AB": 12}

    def test_plain_symbol(self):
        assert parse_release_symbol("EVX", self.SYMBOLS) == 10

    def test_coin_prefix(self):
        assert parse_release_symbol("Coin: NAS", self.SYMBOLS) == 11

    def test_unknown_symbol(self):
        assert parse_release_symbol("ZZZZ", self.SYMBOLS) is None

    def test_sentence_is_not_release(self):
        assert parse_release_symbol("buy EVX now", self.SYMBOLS) is None

    def test_ocr_image_unresolvable(self):
        assert parse_release_symbol("[OCR-proof image]", self.SYMBOLS) is None


class TestExtractionOnWorld:
    @pytest.fixture(scope="class")
    def world(self):
        return SyntheticWorld.generate(CFG)

    @pytest.fixture(scope="class")
    def result(self, world):
        return collect(world, n_label=600)

    def test_recall_of_true_events(self, world, result):
        """The pipeline recovers a large share of ground-truth samples."""
        truth = {
            (cid, e.coin_id) for e in world.events.events for cid in e.channel_ids
        }
        found = {(s.channel_id, s.coin_id) for s in result.samples}
        recall = len(found & truth) / len(truth)
        assert recall > 0.5

    def test_extracted_times_near_true_times(self, world, result):
        by_key = {}
        for event in world.events.events:
            for cid in event.channel_ids:
                by_key[(cid, event.coin_id)] = event.time
        errors = [
            abs(s.time - by_key[(s.channel_id, s.coin_id)])
            for s in result.samples
            if (s.channel_id, s.coin_id) in by_key
        ]
        assert errors and float(np.median(errors)) < 1.0

    def test_statistics_shape(self, result):
        stats = dataset_statistics(result.samples)
        assert stats["samples"] >= stats["events"]
        assert stats["channels"] > 1
        assert stats["coins"] > 1

    def test_sessions_exceed_samples(self, result):
        # Paper: 1,335 samples out of 2,006 sessions.
        assert len(result.sessions) >= len(result.samples)


class TestTargetCoinDataset:
    @pytest.fixture(scope="class")
    def world(self):
        return SyntheticWorld.generate(CFG)

    @pytest.fixture(scope="class")
    def dataset(self, world):
        return collect(world, n_label=600).dataset

    def test_split_proportions_roughly_paper(self, dataset):
        table = dataset.table4()
        total_pos = table["total"]["positives"]
        assert table["train"]["positives"] / total_pos > 0.55
        assert table["test"]["positives"] / total_pos > 0.1

    def test_temporal_split_is_strict(self, dataset):
        t_train, t_val = dataset.split_hours
        for example in dataset.examples:
            if example.split == "train":
                assert example.time <= t_train + 1e-9
            elif example.split == "validation":
                assert t_train - 1e-9 <= example.time <= t_val + 1e-9
            else:
                assert example.time >= t_val - 1e-9

    def test_each_list_has_exactly_one_positive(self, dataset):
        by_list: dict[int, int] = {}
        for example in dataset.examples:
            by_list[example.list_id] = by_list.get(example.list_id, 0) + example.label
        assert all(v == 1 for v in by_list.values())

    def test_negatives_capped(self, dataset):
        cap = dataset.config.max_negatives_per_event
        counts: dict[int, int] = {}
        for example in dataset.examples:
            counts[example.list_id] = counts.get(example.list_id, 0) + 1
        assert max(counts.values()) <= cap + 1

    def test_history_before_excludes_self_and_future(self, dataset):
        for example in dataset.examples[:50]:
            if example.label != 1:
                continue
            history = dataset.history_before(example.channel_id, example.time, 10)
            assert all(s.time < example.time for s in history)

    def test_no_leakage_sequences_precede_split_boundary(self, dataset):
        """Train examples must never see post-boundary history."""
        t_train, _ = dataset.split_hours
        for example in dataset.examples[:300]:
            if example.split != "train":
                continue
            history = dataset.history_before(example.channel_id, example.time, 10)
            assert all(s.time <= t_train + 1e-9 for s in history)

    def test_cold_start_exists(self, dataset):
        stats = dataset.cold_start_stats()
        assert stats["cold_positives"] > 0
        assert stats["cold_positives"] + stats["warm_positives"] == stats["test_positives"]

    def test_too_few_positives_rejected(self, world):
        with pytest.raises(ValueError):
            TargetCoinDataset.build(world, [], exchange_id=0, pair="BTC")
