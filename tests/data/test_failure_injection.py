"""Failure-injection tests: the pipeline on hostile or degenerate inputs."""

import numpy as np
import pytest

from repro.data import (
    PumpMessageDetector,
    extract_sample,
    extract_samples,
    run_detection_pipeline,
    sessionize,
)
from repro.data.sessions import Session
from repro.simulation import Message
from repro.text import KeywordFilter, SentimentAnalyzer, tokenize


def _msg(mid, text, kind="generic", channel=1, time=0.0):
    return Message(mid, channel, time, text, kind)


class TestHostileText:
    HOSTILE = [
        "",                                  # empty
        " " * 500,                           # whitespace only
        "💣" * 200,                          # emoji flood
        "a" * 10_000,                        # very long token
        "PUMP " * 2_000,                     # keyword flood
        "\x00\x01\x02 binary junk",          # control characters
        "Iñtërnâtiônàlizætiøn ünïcödé",      # diacritics
        "<script>alert('x')</script>",       # markup
        "t.me/joinchat/999999999999999999999999",  # absurd invite id
    ]

    def test_tokenizer_survives_everything(self):
        for text in self.HOSTILE:
            tokens = tokenize(text)
            assert isinstance(tokens, list)

    def test_sentiment_survives_everything(self):
        analyzer = SentimentAnalyzer()
        for text in self.HOSTILE:
            scores = analyzer.score(text)
            assert -1.0 <= scores.compound <= 1.0

    def test_keyword_filter_survives_everything(self):
        keyword_filter = KeywordFilter(["BTC"], ["binance"])
        for text in self.HOSTILE:
            assert keyword_filter.matches(text) in (True, False)

    def test_detector_handles_unseen_garbage(self):
        detector = PumpMessageDetector(model="lr").fit(
            ["pump now target soon", "nice weather today"] * 40,
            [1.0, 0.0] * 40,
        )
        probs = detector.predict_proba(self.HOSTILE)
        assert np.isfinite(probs).all()


class TestDegenerateSessions:
    def test_session_of_only_unresolvable_releases(self):
        session = Session(channel_id=1, messages=[
            _msg(0, "[OCR-proof image]", kind="release"),
        ])
        assert extract_sample(session, {"BTC": 0}, {"Binance": 0}) is None

    def test_conflicting_releases_take_last(self):
        session = Session(channel_id=1, messages=[
            _msg(0, "AAA", time=0.0),
            _msg(1, "BBB", time=1.0),
        ])
        sample = extract_sample(session, {"AAA": 5, "BBB": 9}, {})
        assert sample.coin_id == 9
        assert sample.time == 1.0

    def test_extract_samples_empty_input(self):
        assert extract_samples([], ["BTC"], ["Binance"]) == []

    def test_sessionize_single_message(self):
        sessions = sessionize([_msg(0, "pump", time=5.0)])
        assert len(sessions) == 1


class TestPipelineDegenerateInputs:
    def test_detection_pipeline_needs_enough_messages(self):
        messages = [_msg(i, "pump soon", time=float(i)) for i in range(3)]
        with pytest.raises(ValueError):
            run_detection_pipeline(messages, ["BTC"], ["Binance"], n_label=10)

    def test_detection_pipeline_on_uniform_corpus(self):
        # All messages identical and pump-labelled: detector should not crash
        # even though one class is missing downstream.
        messages = [
            _msg(i, "pump now target soon hold", kind="countdown", time=float(i))
            for i in range(80)
        ]
        with pytest.raises(ValueError):
            # roc_auc requires both classes; a uniform corpus is rejected
            # loudly rather than silently producing garbage.
            run_detection_pipeline(messages, ["BTC"], ["Binance"], n_label=60)
