"""Tests for the OCR-image market-reaction fallback."""

import numpy as np
import pytest

from repro.data import ChannelExplorer, run_detection_pipeline, sessionize
from repro.data.market_resolution import (
    find_image_release_sessions,
    recover_image_samples,
    resolve_image_release,
)
from repro.data.sessions import Session
from repro.simulation import Message, OCR_IMAGE_TEXT, SyntheticWorld
from repro.simulation.coins import EXCHANGE_NAMES
from repro.utils import ReproConfig

CFG = ReproConfig.tiny()


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld.generate(CFG)


def _image_session(channel_id: int, time: float) -> Session:
    return Session(channel_id=channel_id, messages=[
        Message(0, channel_id, time - 24.0,
                "BIG PUMP ANNOUNCEMENT! Next pump on Binance at soon UTC. "
                "Pair: BTC.", "announcement"),
        Message(1, channel_id, time, OCR_IMAGE_TEXT, "release"),
    ])


class TestResolution:
    def test_finds_image_sessions(self, world):
        sessions = [
            _image_session(1, 1000.0),
            Session(channel_id=2, messages=[
                Message(2, 2, 0.0, "plain text", "generic")
            ]),
        ]
        assert len(find_image_release_sessions(sessions)) == 1

    def test_resolves_actual_pump_coin(self, world):
        # Use a real event from the world: its pump spike is in the market.
        event = next(e for e in world.events.events if e.exchange_id == 0)
        session = _image_session(event.channel_ids[0], event.time)
        resolution = resolve_image_release(session, world.market, exchange_id=0)
        assert resolution.coin_id == event.coin_id
        assert resolution.spike_return > 0.25

    def test_quiet_time_resolves_to_none(self, world):
        # Pick an hour without any event within a day.
        event_hours = {int(e.time) for e in world.events.events}
        quiet = next(
            h for h in range(2000, CFG.horizon_hours)
            if all(abs(h - eh) > 48 for eh in event_hours)
        )
        session = _image_session(1, float(quiet))
        resolution = resolve_image_release(session, world.market, exchange_id=0)
        assert resolution.coin_id is None

    def test_session_without_image_resolves_none(self, world):
        session = Session(channel_id=1, messages=[
            Message(0, 1, 100.0, "pump soon", "countdown")
        ])
        resolution = resolve_image_release(session, world.market)
        assert resolution.coin_id is None


class TestRecoveryOnPipeline:
    def test_recovery_adds_samples(self, world):
        explorer = ChannelExplorer(world.channels, world.messages, max_hops=2)
        collected = explorer.collect_messages(
            explorer.explore(world.channels.seed_channel_ids())
        )
        names = EXCHANGE_NAMES[: CFG.n_exchanges]
        outcome = run_detection_pipeline(collected, world.coins.symbols, names,
                                         n_label=500, seed=0)
        sessions = sessionize(outcome.detected)
        recovered = recover_image_samples(sessions, world.market,
                                          world.coins.symbols, names)
        # The tiny world has few image releases; recovery may be empty but
        # must never invent coins for text-resolvable sessions.
        truth = {
            (cid, e.coin_id): e.time
            for e in world.events.events for cid in e.channel_ids
        }
        for sample in recovered:
            key = (sample.channel_id, sample.coin_id)
            assert key in truth
            assert abs(truth[key] - sample.time) < 2.0
