"""Wire-schema codecs and the strict decode layer (no HTTP involved)."""

import json

import pytest

from repro.core.predictor import CoinScore, Ranking
from repro.gateway.schema import (
    ERROR_CODES,
    SCHEMA_VERSION,
    GatewayFault,
    ObserveRequestV1,
    RankBatchRequestV1,
    RankRequestV1,
    ReloadRequestV1,
    check_schema_version,
    decode_json_body,
    error_envelope,
)
from repro.serving import Alert, Announcement


def wire(payload: dict) -> dict:
    """Round-trip through actual JSON, like the HTTP layer does."""
    return json.loads(json.dumps(payload))


@pytest.fixture
def announcement():
    return Announcement(channel_id=42, coin_id=7, exchange_id=1,
                        pair="ETH", time=2410.372918471)


@pytest.fixture
def alert(announcement):
    ranking = Ranking(
        channel_id=42, exchange_id=1, pump_time=2410.372918471,
        scores=[
            CoinScore(7, "AAA", 0.9123456789012345),
            CoinScore(9, "BBB", 0.1000000000000001),
        ],
    )
    return Alert(announcement=announcement, ranking=ranking,
                 latency_ms=3.25)


class TestCodecs:
    def test_announcement_round_trip(self, announcement):
        decoded = Announcement.from_payload(wire(announcement.to_payload()))
        assert decoded == announcement

    def test_announcement_defaults(self):
        decoded = Announcement.from_payload(
            {"channel_id": 3, "time": 100.5}
        )
        assert decoded.coin_id == -1
        assert decoded.exchange_id == 0
        assert decoded.pair == "BTC"

    def test_alert_round_trip_is_bit_exact(self, alert):
        decoded = Alert.from_payload(wire(alert.to_payload()))
        assert decoded.announcement == alert.announcement
        assert decoded.latency_ms == alert.latency_ms
        # Bit-for-bit: == on floats, not approx.
        assert decoded.ranking.scores == alert.ranking.scores
        assert decoded.announced_rank == alert.announced_rank

    def test_announced_rank_is_recomputed_not_trusted(self, alert):
        payload = wire(alert.to_payload())
        payload["announced_rank"] = 999
        assert Alert.from_payload(payload).announced_rank == 1

    def test_ranking_round_trip(self, alert):
        decoded = Ranking.from_payload(wire(alert.ranking.to_payload()))
        assert decoded == alert.ranking


class TestStrictDecode:
    def test_bad_json_body(self):
        with pytest.raises(GatewayFault) as exc:
            decode_json_body(b"{nope")
        assert exc.value.code == "bad_json"
        assert exc.value.status == 400

    def test_non_object_body(self):
        with pytest.raises(GatewayFault) as exc:
            decode_json_body(b"[1, 2]")
        assert exc.value.code == "bad_json"

    def test_missing_schema_version(self):
        with pytest.raises(GatewayFault) as exc:
            check_schema_version({})
        assert exc.value.code == "bad_request"

    def test_unsupported_schema_version(self):
        with pytest.raises(GatewayFault) as exc:
            check_schema_version({"schema_version": SCHEMA_VERSION + 1})
        assert exc.value.code == "unsupported_schema_version"
        assert str(SCHEMA_VERSION) in exc.value.message

    def test_rank_missing_announcement(self):
        with pytest.raises(GatewayFault) as exc:
            RankRequestV1.decode({"schema_version": SCHEMA_VERSION})
        assert exc.value.code == "bad_request"
        assert "announcement" in exc.value.message

    def test_rank_missing_channel(self):
        with pytest.raises(GatewayFault) as exc:
            RankRequestV1.decode({
                "schema_version": SCHEMA_VERSION,
                "announcement": {"time": 10.0},
            })
        assert exc.value.code == "bad_request"
        assert "channel_id" in exc.value.message

    def test_rank_rejects_bool_channel(self):
        # JSON true silently becoming channel 1 is exactly what the strict
        # layer exists to stop.
        with pytest.raises(GatewayFault) as exc:
            RankRequestV1.decode({
                "schema_version": SCHEMA_VERSION,
                "announcement": {"channel_id": True, "time": 10.0},
            })
        assert exc.value.code == "bad_request"

    def test_rank_rejects_nonfinite_time(self):
        with pytest.raises(GatewayFault) as exc:
            RankRequestV1.decode({
                "schema_version": SCHEMA_VERSION,
                "announcement": {"channel_id": 3, "time": float("inf")},
            })
        assert exc.value.code == "bad_request"
        assert "finite" in exc.value.message

    def test_nonfinite_tokens_rejected_at_json_layer(self):
        with pytest.raises(GatewayFault) as exc:
            decode_json_body(b'{"time": NaN}')
        assert exc.value.code == "bad_json"

    def test_rank_rejects_fractional_channel(self):
        with pytest.raises(GatewayFault):
            RankRequestV1.decode({
                "schema_version": SCHEMA_VERSION,
                "announcement": {"channel_id": 3.5, "time": 10.0},
            })

    def test_batch_error_names_the_index(self):
        with pytest.raises(GatewayFault) as exc:
            RankBatchRequestV1.decode({
                "schema_version": SCHEMA_VERSION,
                "announcements": [
                    {"channel_id": 1, "time": 10.0},
                    {"channel_id": "oops", "time": 10.0},
                ],
            })
        assert exc.value.code == "bad_request"
        assert "announcements[1]" in exc.value.message

    def test_observe_requires_coin(self):
        with pytest.raises(GatewayFault) as exc:
            ObserveRequestV1.decode({
                "schema_version": SCHEMA_VERSION,
                "announcement": {"channel_id": 1, "time": 10.0},
            })
        assert exc.value.code == "bad_request"
        assert "coin_id" in exc.value.message

    def test_reload_requires_nonempty_ref(self):
        with pytest.raises(GatewayFault):
            ReloadRequestV1.decode({"schema_version": SCHEMA_VERSION,
                                    "ref": ""})
        with pytest.raises(GatewayFault):
            ReloadRequestV1.decode({"schema_version": SCHEMA_VERSION,
                                    "ref": 7})


class TestErrorContract:
    def test_stable_code_set(self):
        # The machine-readable contract: clients switch on these strings.
        assert ERROR_CODES == {
            "bad_json", "bad_request", "unsupported_schema_version",
            "unknown_channel", "no_candidates", "batch_too_large",
            "payload_too_large", "unknown_model", "bad_artifact",
            "no_registry", "not_found", "method_not_allowed", "internal",
            "overloaded", "deadline_exceeded",
        }

    def test_envelope_shape(self):
        fault = GatewayFault("bad_json", 400, "nope")
        envelope = wire(error_envelope(fault))
        assert envelope == {
            "schema_version": SCHEMA_VERSION,
            "error": {"code": "bad_json", "message": "nope"},
        }

    def test_unregistered_code_is_a_bug(self):
        with pytest.raises(AssertionError):
            GatewayFault("made_up_code", 400, "x")

    def test_request_payloads_carry_schema_version(self, announcement):
        assert RankRequestV1(announcement).to_payload()[
            "schema_version"] == SCHEMA_VERSION
        assert RankBatchRequestV1((announcement,)).to_payload()[
            "schema_version"] == SCHEMA_VERSION
        assert ObserveRequestV1(announcement).to_payload()[
            "schema_version"] == SCHEMA_VERSION
        assert ReloadRequestV1("m@v0001").to_payload()[
            "schema_version"] == SCHEMA_VERSION
