"""Cross-connection micro-batching (PR 9).

Three contracts:

* **parity** — an alert produced through a coalesced flush is
  bit-for-bit the alert the solo path produces for the same
  announcement, concurrent or sequential;
* **per-entry gating** — one bad announcement (unknown channel, coin
  outside the universe, expired deadline) faults its own request with
  the same stable code the solo path uses, and never poisons its
  batch-mates;
* **coalescing mechanics** — concurrent submits share one flush, a lone
  submit skips the window, a full batch releases the window early, and
  a crashing executor faults (never hangs) every waiter.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.gateway import GatewayApp, MicroBatcher
from repro.gateway.microbatch import _Entry
from repro.gateway.schema import (
    E_DEADLINE_EXCEEDED,
    E_INTERNAL,
    E_UNKNOWN_CHANNEL,
    GatewayFault,
    RankRequestV1,
)
from repro.resilience import Deadline
from repro.serving import Announcement
from tests.gateway.conftest import make_announcements, service_from


def exact(alert):
    return tuple((s.coin_id, s.probability) for s in alert.ranking.scores)


class TestMicroBatcherMechanics:
    """White-box: the batcher over a scripted executor."""

    @staticmethod
    def _answer(batch):
        for entry in batch:
            entry.alert = ("alert", entry.announcement)

    def test_rejects_degenerate_configuration(self):
        with pytest.raises(ValueError):
            MicroBatcher(self._answer, 0.0, 4)
        with pytest.raises(ValueError):
            MicroBatcher(self._answer, 0.002, 0)

    def test_lone_request_skips_the_window(self):
        # A 30s window would make this test time out if the lone-request
        # fast path ever regressed into waiting.
        batcher = MicroBatcher(self._answer, window_s=30.0, max_batch=8)
        started = time.monotonic()
        assert batcher.submit("a0") == ("alert", "a0")
        assert time.monotonic() - started < 5.0
        assert batcher.flushes == 1
        assert batcher.coalesced_requests == 1

    def test_concurrent_requests_coalesce_into_one_flush(self):
        release = threading.Event()
        batches: list[list] = []

        def execute(batch):
            batches.append([entry.announcement for entry in batch])
            if len(batches) == 1:
                # Hold the first flush open so the next two submits are
                # provably concurrent with an in-flight rank.
                release.wait(30.0)
            self._answer(batch)

        # max_batch=2: the second concurrent submit must release the 30s
        # window immediately, or the join below would hit its timeout.
        batcher = MicroBatcher(execute, window_s=30.0, max_batch=2)
        results: dict[str, tuple] = {}

        def run(tag):
            results[tag] = batcher.submit(tag)

        threads = [threading.Thread(target=run, args=(f"a{i}",))
                   for i in range(3)]
        threads[0].start()
        deadline = time.monotonic() + 30.0
        while not batches:  # a0's flush is now executing (and blocked)
            assert time.monotonic() < deadline
            time.sleep(0.005)
        threads[1].start()
        threads[2].start()
        for thread in threads[1:]:
            thread.join(timeout=30.0)
        release.set()
        threads[0].join(timeout=30.0)
        assert not any(thread.is_alive() for thread in threads)

        assert batcher.flushes == 2
        assert batcher.coalesced_requests == 3
        assert sorted(len(batch) for batch in batches) == [1, 2]
        assert results == {f"a{i}": ("alert", f"a{i}") for i in range(3)}

    def test_crashing_executor_faults_instead_of_hanging(self):
        def explode(batch):
            raise RuntimeError("boom")

        batcher = MicroBatcher(explode, window_s=30.0, max_batch=8)
        with pytest.raises(GatewayFault) as excinfo:
            batcher.submit("a0")
        assert excinfo.value.code == E_INTERNAL
        assert excinfo.value.status == 500

    def test_executor_abandoning_an_entry_faults_it(self):
        batcher = MicroBatcher(lambda batch: None, window_s=30.0,
                               max_batch=8)
        with pytest.raises(GatewayFault) as excinfo:
            batcher.submit("a0")
        assert excinfo.value.status == 500
        assert "abandoned" in excinfo.value.message


@pytest.fixture(scope="module")
def solo_app(gw_registry, gw_world, gw_collection) -> GatewayApp:
    """The reference: batch_window_ms=0 keeps the direct rank path."""
    return GatewayApp(
        service_from(gw_registry, "dnn", gw_world, gw_collection))


@pytest.fixture(scope="module")
def batched_app(gw_registry, gw_world, gw_collection) -> GatewayApp:
    return GatewayApp(
        service_from(gw_registry, "dnn", gw_world, gw_collection),
        batch_window_ms=25.0)


class TestCoalescedParity:
    """The batched app against the solo app, same artifact."""

    def test_concurrent_coalesced_ranks_match_solo_bit_for_bit(
            self, solo_app, batched_app, test_positives):
        # coin_id=-1 announcements (the realistic rank input) fold no
        # history, so rankings are order-independent and comparable.
        announcements = make_announcements(test_positives, 3,
                                           coin_known=False)
        expected = [exact(solo_app.rank(RankRequestV1(a)).alert)
                    for a in announcements]

        before = batched_app._batcher.coalesced_requests
        results: list = [None] * len(announcements)
        barrier = threading.Barrier(len(announcements))

        def run(index):
            barrier.wait()
            results[index] = batched_app.rank(
                RankRequestV1(announcements[index])).alert

        threads = [threading.Thread(target=run, args=(i,))
                   for i in range(len(announcements))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not any(thread.is_alive() for thread in threads)

        assert [exact(alert) for alert in results] == expected
        # Every rank went through the batcher, however it coalesced.
        assert batched_app._batcher.coalesced_requests - before \
            == len(announcements)

        # Sequential traffic through the same batcher agrees too (the
        # lone-request fast path).
        again = [exact(batched_app.rank(RankRequestV1(a)).alert)
                 for a in announcements]
        assert again == expected

    def test_bad_entries_fault_alone_good_entries_still_score(
            self, batched_app, test_positives):
        good = make_announcements(test_positives, 2, coin_known=False)
        universe = len(
            batched_app.service.predictor.source.coins.symbols)
        bad_channel = Announcement(channel_id=10 ** 6, coin_id=-1,
                                   exchange_id=0, pair="BTC",
                                   time=good[0].time)
        bad_coin = Announcement(channel_id=good[0].channel_id,
                                coin_id=universe + 3, exchange_id=0,
                                pair="BTC", time=good[0].time)
        entries = [
            _Entry(good[0], None),
            _Entry(bad_channel, None),
            _Entry(bad_coin, None),
            _Entry(good[1], None),
        ]
        batched_app._execute_coalesced(entries)

        assert entries[1].fault is not None
        assert entries[1].fault.code == E_UNKNOWN_CHANNEL
        assert entries[1].fault.status == 422
        assert entries[2].fault is not None
        assert entries[2].fault.status == 400
        assert "coin" in entries[2].fault.message
        # Batch-mates scored, bit-identical to the solo path.
        for entry, announcement in ((entries[0], good[0]),
                                    (entries[3], good[1])):
            assert entry.fault is None
            assert exact(entry.alert) == exact(
                batched_app.rank(RankRequestV1(announcement)).alert)

    def test_expired_deadline_faults_only_its_own_entry(
            self, batched_app, test_positives):
        good = make_announcements(test_positives, 2, coin_known=False)
        expired = Deadline(1e-6)
        time.sleep(0.01)
        assert expired.expired
        entries = [_Entry(good[0], None), _Entry(good[1], expired)]
        batched_app._execute_coalesced(entries)

        assert entries[1].fault is not None
        assert entries[1].fault.code == E_DEADLINE_EXCEEDED
        assert entries[1].fault.status == 503
        assert entries[0].fault is None
        assert entries[0].alert is not None

    def test_coalesced_ranks_over_real_http(self, gateway, solo_app,
                                            batched_app, test_positives):
        _server, client = gateway(batched_app)
        announcements = make_announcements(test_positives, 3,
                                           coin_known=False)
        expected = [exact(solo_app.rank(RankRequestV1(a)).alert)
                    for a in announcements]

        results: list = [None] * len(announcements)
        barrier = threading.Barrier(len(announcements))

        def run(index):
            barrier.wait()
            results[index] = client.rank(announcements[index])

        threads = [threading.Thread(target=run, args=(i,))
                   for i in range(len(announcements))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not any(thread.is_alive() for thread in threads)
        assert [exact(alert) for alert in results] == expected
