"""Acceptance: gateway responses are bit-for-bit the in-process rankings.

For every ranker family (snn/dnn/gru/tcn): two services are booted from
the *same* registry artifact — one behind a real HTTP gateway, one
in-process — and fed an identical announcement sequence.  Every decoded
probability must compare exactly equal (``==`` on float64, no tolerance)
and every candidate order identical, through both ``/v1/rank`` and
``/v1/rank/batch``.
"""

import pytest

from repro.gateway import GatewayApp
from tests.gateway.conftest import (
    GATEWAY_ARCHS,
    make_announcements,
    service_from,
)


def exact(ranking):
    return [(s.coin_id, s.symbol, s.probability) for s in ranking.scores]


@pytest.mark.parametrize("arch", GATEWAY_ARCHS)
def test_rank_and_batch_parity(arch, gw_world, gw_collection, gw_registry,
                               gateway, test_positives):
    local = service_from(gw_registry, arch, gw_world, gw_collection)
    remote = service_from(gw_registry, arch, gw_world, gw_collection)
    _server, client = gateway(GatewayApp(remote, registry=gw_registry))

    announcements = make_announcements(test_positives,
                                       min(6, len(test_positives)))
    split = len(announcements) // 2

    # Phase 1: one-at-a-time via POST /v1/rank vs in-process rank_one.
    # Both sides observe each announcement, so their histories evolve in
    # lockstep — later scores depend on earlier ones being identical too.
    for announcement in announcements[:split]:
        over_the_wire = client.rank(announcement)
        in_process = local.rank_one(announcement)
        assert exact(over_the_wire.ranking) == exact(in_process.ranking)
        assert over_the_wire.announced_rank == in_process.announced_rank

    # Phase 2: the rest as one micro-batch via POST /v1/rank/batch.
    wire_alerts = client.rank_batch(announcements[split:])
    local_alerts = local.rank_batch(announcements[split:])
    assert len(wire_alerts) == len(local_alerts)
    for over_the_wire, in_process in zip(wire_alerts, local_alerts):
        assert over_the_wire.announcement == in_process.announcement
        assert exact(over_the_wire.ranking) == exact(in_process.ranking)


def test_parity_survives_observe(gw_world, gw_collection, gw_registry,
                                 gateway, test_positives):
    """/v1/observe and in-process observe() leave identical state behind."""
    local = service_from(gw_registry, "snn", gw_world, gw_collection)
    remote = service_from(gw_registry, "snn", gw_world, gw_collection)
    _server, client = gateway(GatewayApp(remote, registry=gw_registry))

    announcements = make_announcements(test_positives, 2)
    client.observe(announcements[0])
    local.observe(announcements[0])
    probe = announcements[1]
    assert exact(client.rank(probe).ranking) == \
        exact(local.rank_one(probe).ranking)
