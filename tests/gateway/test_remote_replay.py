"""`repro serve --gateway`'s engine: remote replay ≡ local replay.

The same artifact, the same message stream: the client-side replay loop
(:func:`replay_against_gateway`) must produce exactly the alerts the
in-process :func:`replay_test_period` engine produces — same count, same
announcements, bit-for-bit identical rankings.
"""

import pytest

from repro.gateway import GatewayApp, replay_against_gateway
from repro.registry import load_predictor
from repro.serving import CollectingSink, replay_test_period
from tests.gateway.conftest import service_from


def exact(ranking):
    return [(s.coin_id, s.probability) for s in ranking.scores]


@pytest.fixture(scope="module")
def local_result(gw_world, gw_collection, gw_registry):
    predictor = load_predictor(gw_registry.resolve("snn"), gw_world,
                               gw_collection.dataset)
    return replay_test_period(gw_world, gw_collection, predictor)


def test_remote_replay_matches_local_engine(gw_world, gw_collection,
                                            gw_registry, gateway,
                                            local_result):
    service = service_from(gw_registry, "snn", gw_world, gw_collection)
    _server, client = gateway(GatewayApp(service, registry=gw_registry))
    sink = CollectingSink()
    remote_result = replay_against_gateway(
        gw_world, gw_collection, client, sinks=(sink,)
    )

    assert len(remote_result.alerts) == len(local_result.alerts) > 0
    for remote, local in zip(remote_result.alerts, local_result.alerts):
        assert remote.announcement == local.announcement
        assert exact(remote.ranking) == exact(local.ranking)
        assert remote.announced_rank == local.announced_rank

    # The engine's skip semantics carry over the wire.
    assert [a for a in remote_result.skipped] == \
        [a for a in local_result.skipped]

    # Sinks and client-side stats saw every alert.
    assert len(sink.alerts) == len(remote_result.alerts)
    stats = remote_result.stats.summary()
    assert stats["alerts"] == len(remote_result.alerts)
    assert stats["messages"] > 0
    assert stats["announcements"] >= len(remote_result.alerts)
