"""Happy-path endpoint behavior over a real HTTP server."""

import pytest

from repro.gateway import GatewayApp
from repro.registry import registry_payload
from repro.serving import Announcement
from tests.gateway.conftest import make_announcements, service_from


@pytest.fixture
def running(gw_world, gw_collection, gw_registry, gateway):
    service = service_from(gw_registry, "snn", gw_world, gw_collection)
    app = GatewayApp(service, registry=gw_registry)
    server, client = gateway(app)
    return app, server, client


class TestIntrospection:
    def test_healthz(self, running):
        _app, _server, client = running
        health = client.healthz()
        assert health.status == "ok"
        assert health.reloads == 0
        assert health.uptime_seconds >= 0.0

    def test_stats_counts_requests(self, running, test_positives):
        _app, _server, client = running
        announcement = make_announcements(test_positives, 1)[0]
        client.rank(announcement)
        client.rank_batch([announcement])
        stats = client.stats()
        assert stats.gateway["requests"]["rank"] == 1
        assert stats.gateway["requests"]["rank_batch"] == 1
        assert stats.service["alerts"] == 2

    def test_models_matches_registry_serializer(self, running, gw_registry):
        _app, _server, client = running
        response = client.models()
        expected = registry_payload(gw_registry)
        assert response.registry == expected["root"]
        assert response.models == expected["models"]
        names = {entry["name"] for entry in response.models}
        assert names == {"snn", "dnn", "gru", "tcn"}


class TestRank:
    def test_rank_returns_full_candidate_ranking(self, running,
                                                 test_positives):
        _app, _server, client = running
        announcement = make_announcements(test_positives, 1)[0]
        alert = client.rank(announcement)
        assert alert.announcement == announcement
        assert len(alert.ranking.scores) > 1
        assert alert.announced_rank >= 1
        probabilities = [s.probability for s in alert.ranking.scores]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_rank_without_coin_id_never_pollutes_history(self, running,
                                                         test_positives):
        app, _server, client = running
        announcement = make_announcements(test_positives, 1,
                                          coin_known=False)[0]
        before = len(app.service.history(announcement.channel_id))
        alert = client.rank(announcement)
        assert alert.announced_rank == -1
        assert len(app.service.history(announcement.channel_id)) == before

    def test_empty_batch_is_ok_and_empty(self, running):
        _app, _server, client = running
        assert client.rank_batch([]) == []


class TestClientUrls:
    def test_path_prefix_is_honored_not_dropped(self):
        from repro.gateway import GatewayClient

        client = GatewayClient("http://proxy.example.com:8080/repro/")
        assert client.path_prefix == "/repro"
        assert client.base_url == "http://proxy.example.com:8080/repro"

    def test_bare_host_port(self):
        from repro.gateway import GatewayClient

        client = GatewayClient("127.0.0.1:9999")
        assert client.path_prefix == ""
        assert client.base_url == "http://127.0.0.1:9999"


class TestObserve:
    def test_observe_extends_history(self, running, test_positives):
        app, _server, client = running
        announcement = make_announcements(test_positives, 1)[0]
        before = len(app.service.history(announcement.channel_id))
        response = client.observe(announcement)
        assert response.channel_id == announcement.channel_id
        assert response.history_length == before + 1

    def test_observed_history_changes_later_rankings(self, gw_world,
                                                     gw_collection,
                                                     gw_registry, gateway,
                                                     test_positives):
        service = service_from(gw_registry, "snn", gw_world, gw_collection)
        witness = service_from(gw_registry, "snn", gw_world, gw_collection)
        _server, client = gateway(GatewayApp(service, registry=gw_registry))
        base = make_announcements(test_positives, 2)
        probe = Announcement(
            channel_id=base[0].channel_id, coin_id=-1, exchange_id=0,
            pair="BTC", time=base[0].time + 2.0,
        )
        # Same probe, but remote history got one extra observation first.
        client.observe(base[0])
        remote = client.rank(probe)
        local = witness.rank_one(probe)
        assert [s.coin_id for s in remote.ranking.scores] != [] \
            and remote.ranking.scores != local.ranking.scores
