"""Gateway observability over a real HTTP server.

The ISSUE 6 acceptance surface: ``/v1/metrics`` exposes a strictly
parseable Prometheus page covering transport *and* serving series, every
response (including error envelopes) carries the trace/duration headers,
a traced ``/v1/rank`` produces the full span tree gateway → service →
feature cache, 4xx/5xx requests emit structured JSON log lines joined on
``trace_id``, and none of it perturbs the rankings.
"""

from __future__ import annotations

import pytest

from repro.gateway import GatewayApp
from repro.gateway.client import GatewayRequestError
from repro.serving import Announcement
from repro.telemetry import (
    CapturingLogger,
    TelemetryHub,
    parse_text,
    start_trace,
)
from tests.gateway.conftest import make_announcements, service_from


@pytest.fixture
def observed(gw_world, gw_collection, gw_registry, gateway):
    """A gateway with a capturing logger and slow_ms=0 (trace everything)."""
    service = service_from(gw_registry, "snn", gw_world, gw_collection)
    hub = TelemetryHub(logger=CapturingLogger(), slow_ms=0.0)
    app = GatewayApp(service, registry=gw_registry, telemetry=hub)
    server, client = gateway(app)
    return app, hub, server, client


def samples_by_key(text):
    return {(s.name, s.labels): s.value for s in parse_text(text)}


class TestMetricsEndpoint:
    def test_scrape_parses_and_counts_requests(self, observed,
                                               test_positives):
        _app, _hub, _server, client = observed
        announcement = make_announcements(test_positives, 1)[0]
        client.rank(announcement)
        client.healthz()
        samples = samples_by_key(client.metrics_text())  # strict parse
        assert samples[("gateway_requests_total",
                        (("endpoint", "/v1/rank"), ("status", "200")))] == 1
        assert samples[("gateway_requests_total",
                        (("endpoint", "/v1/healthz"), ("status", "200")))] == 1
        # The serving registry is merged into the same scrape.
        assert samples[("service_alerts_total", ())] == 1
        buckets = [key for key in samples
                   if key[0] == "rank_latency_seconds_bucket"]
        assert buckets, "latency histogram must be exposed"
        assert samples[("rank_latency_seconds_count",
                        (("model", "SNN"),))] >= 1

    def test_model_info_and_uptime_series(self, observed):
        _app, _hub, _server, client = observed
        samples = samples_by_key(client.metrics_text())
        info = [key for key in samples if key[0] == "gateway_model_info"]
        assert len(info) == 1
        labels = dict(info[0][1])
        assert labels["arch"] == "SNN"
        uptime = samples[("gateway_uptime_seconds", ())]
        assert uptime >= 0.0

    def test_scrapes_are_not_archived_as_traces(self, observed):
        _app, hub, _server, client = observed
        for _ in range(3):
            client.metrics_text()
            client.recent_traces()
        assert len(hub.traces) == 0
        client.healthz()
        assert len(hub.traces) == 1


class TestHeaders:
    def test_every_endpoint_returns_telemetry_headers(self, observed,
                                                      test_positives):
        _app, _hub, _server, client = observed
        announcement = make_announcements(test_positives, 1)[0]
        calls = [
            lambda: client.healthz(),
            lambda: client.stats(),
            lambda: client.models(),
            lambda: client.rank(announcement),
            lambda: client.rank_batch([announcement]),
            lambda: client.observe(announcement),
            lambda: client.metrics_text(),
            lambda: client.recent_traces(),
        ]
        for call in calls:
            call()
            assert client.last_server_duration_ms is not None
            assert client.last_server_duration_ms >= 0.0
            assert client.last_trace_id

    def test_headers_present_on_error_responses(self, observed):
        _app, _hub, _server, client = observed
        bad = Announcement(channel_id=10**9, coin_id=-1,
                           exchange_id=0, pair="BTC", time=0.0)
        with pytest.raises(GatewayRequestError) as excinfo:
            client.rank(bad)
        assert excinfo.value.code == "unknown_channel"
        assert client.last_server_duration_ms is not None
        assert client.last_trace_id

    def test_client_propagates_ambient_trace_id(self, observed):
        _app, hub, _server, client = observed
        with start_trace("caller", trace_id="caller-trace-1"):
            client.healthz()
        assert client.last_trace_id == "caller-trace-1"
        (archived,) = hub.traces.recent(limit=1)
        assert archived["trace_id"] == "caller-trace-1"


class TestSpanTree:
    def test_rank_trace_spans_the_full_stack(self, observed, test_positives):
        _app, hub, _server, client = observed
        announcement = make_announcements(test_positives, 1)[0]
        client.rank(announcement)
        root = next(t for t in hub.traces.recent()
                    if t["name"] == "POST /v1/rank")
        assert root["trace_id"] == client.last_trace_id
        assert root["attributes"]["status"] == 200

        def names(node):
            yield node["name"]
            for child in node["children"]:
                yield from names(child)

        seen = list(names(root))
        assert "service.rank_batch" in seen
        assert "cache.features" in seen  # cold cache -> miss path traced
        # Every span completed and carries the request's trace id.
        def check(node):
            assert node["trace_id"] == root["trace_id"]
            assert node["duration_ms"] is not None
            for child in node["children"]:
                check(child)

        check(root)

    def test_trace_recent_endpoint_serves_the_tree(self, observed,
                                                   test_positives):
        _app, _hub, _server, client = observed
        announcement = make_announcements(test_positives, 1)[0]
        client.rank(announcement)
        traces = client.recent_traces(limit=1)
        assert len(traces) == 1
        assert traces[0]["name"] == "POST /v1/rank"
        assert traces[0]["children"]

    def test_trace_recent_rejects_bad_limit(self, observed):
        import urllib.error
        import urllib.request

        _app, _hub, server, client = observed
        # The client coerces ``limit`` itself, so go in raw.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server.url + "/v1/trace/recent?limit=abc")
        assert excinfo.value.code == 400


class TestStructuredLogs:
    def test_errors_logged_with_code_and_trace_id(self, observed):
        _app, hub, _server, client = observed
        bad = Announcement(channel_id=10**9, coin_id=-1,
                           exchange_id=0, pair="BTC", time=0.0)
        with pytest.raises(GatewayRequestError):
            client.rank(bad)
        records = [r for r in hub.logger.records
                   if r["event"] == "gateway_error"]
        (record,) = records
        assert record["code"] == "unknown_channel"
        assert record["status"] == 422
        assert record["endpoint"] == "/v1/rank"
        assert record["trace_id"] == client.last_trace_id
        samples = samples_by_key(client.metrics_text())
        assert samples[("gateway_errors_total",
                        (("code", "unknown_channel"),))] == 1

    def test_slow_request_log_attaches_span_tree(self, observed,
                                                 test_positives):
        _app, hub, _server, client = observed  # slow_ms=0: everything slow
        announcement = make_announcements(test_positives, 1)[0]
        client.rank(announcement)
        slow = [r for r in hub.logger.records if r["event"] == "slow_request"]
        assert slow, "slow_ms=0 must flag every request"
        record = next(r for r in slow if r["name"] == "POST /v1/rank")
        assert record["level"] == "warning"
        assert record["trace_id"] == client.last_trace_id
        assert record["trace"]["name"] == "POST /v1/rank"
        assert record["trace"]["children"]


class TestParityUnderTelemetry:
    def test_rankings_bit_identical_with_tracing_on(self, gw_world,
                                                    gw_collection,
                                                    gw_registry, gateway,
                                                    test_positives):
        """Instrumentation must never perturb scores (acceptance)."""
        local = service_from(gw_registry, "snn", gw_world, gw_collection)
        remote = service_from(gw_registry, "snn", gw_world, gw_collection)
        hub = TelemetryHub(logger=CapturingLogger(), slow_ms=0.0)
        _server, client = gateway(
            GatewayApp(remote, registry=gw_registry, telemetry=hub)
        )
        announcements = make_announcements(test_positives,
                                           min(4, len(test_positives)))
        for announcement in announcements:
            with start_trace("caller"):
                over_the_wire = client.rank(announcement)
            in_process = local.rank_one(announcement)
            wire = [(s.coin_id, s.probability)
                    for s in over_the_wire.ranking.scores]
            direct = [(s.coin_id, s.probability)
                      for s in in_process.ranking.scores]
            assert wire == direct  # float64 ==, no tolerance
