"""Gateway error paths: every refusal is a stable-coded 4xx envelope.

The contract under test (ISSUE 5): malformed JSON, an unknown schema
version, an unknown channel or an oversized batch must map to the right
HTTP status and a machine-readable ``error.code`` — never a stack trace,
never a wrong score.
"""

import http.client
import json

import pytest

from repro.gateway import GatewayApp, GatewayRequestError
from repro.gateway.schema import SCHEMA_VERSION
from repro.serving import Announcement
from tests.gateway.conftest import make_announcements, service_from


def raw_request(server, method: str, path: str, body: bytes | None = None,
                headers: dict | None = None):
    """Speak raw HTTP so malformed bodies actually reach the wire."""
    host, port = server.server_address[:2]
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        payload = response.read()
        return response.status, json.loads(payload.decode("utf-8"))
    finally:
        connection.close()


@pytest.fixture(scope="module")
def served(gw_world, gw_collection, gw_registry):
    from repro.gateway import serve_in_thread

    service = service_from(gw_registry, "dnn", gw_world, gw_collection)
    app = GatewayApp(service, registry=gw_registry, max_batch=4)
    server, _thread = serve_in_thread(app)
    yield server
    server.shutdown()
    server.server_close()


@pytest.fixture(scope="module")
def served_client(served):
    from repro.gateway import GatewayClient

    return GatewayClient(served.url)


def assert_envelope(status, body, *, expect_status, expect_code):
    assert status == expect_status
    assert body["schema_version"] == SCHEMA_VERSION
    assert body["error"]["code"] == expect_code
    assert isinstance(body["error"]["message"], str)
    # Envelope, not a traceback dump.
    assert "Traceback" not in json.dumps(body)


class TestBadPayloads:
    def test_malformed_json_body(self, served):
        status, body = raw_request(served, "POST", "/v1/rank", b"{oops")
        assert_envelope(status, body, expect_status=400,
                        expect_code="bad_json")

    def test_empty_body(self, served):
        status, body = raw_request(served, "POST", "/v1/rank", b"")
        assert_envelope(status, body, expect_status=400,
                        expect_code="bad_json")

    def test_unknown_schema_version(self, served):
        payload = json.dumps({
            "schema_version": 999,
            "announcement": {"channel_id": 1, "time": 2000.0},
        }).encode()
        status, body = raw_request(served, "POST", "/v1/rank", payload)
        assert_envelope(status, body, expect_status=400,
                        expect_code="unsupported_schema_version")

    def test_missing_field(self, served):
        payload = json.dumps({
            "schema_version": SCHEMA_VERSION,
            "announcement": {"time": 2000.0},
        }).encode()
        status, body = raw_request(served, "POST", "/v1/rank", payload)
        assert_envelope(status, body, expect_status=400,
                        expect_code="bad_request")
        assert "channel_id" in body["error"]["message"]


class TestDomainRefusals:
    def test_unknown_channel(self, served):
        payload = json.dumps({
            "schema_version": SCHEMA_VERSION,
            "announcement": {"channel_id": -424242, "time": 2000.0},
        }).encode()
        status, body = raw_request(served, "POST", "/v1/rank", payload)
        assert_envelope(status, body, expect_status=422,
                        expect_code="unknown_channel")

    def test_unknown_channel_via_client(self, served_client):
        announcement = Announcement(channel_id=-424242, coin_id=-1,
                                    exchange_id=0, pair="BTC", time=2000.0)
        with pytest.raises(GatewayRequestError) as exc:
            served_client.rank(announcement)
        assert exc.value.code == "unknown_channel"
        assert exc.value.status == 422

    def test_oversized_batch(self, served_client, test_positives):
        # The server was started with max_batch=4.
        announcements = make_announcements(test_positives, 1) * 5
        with pytest.raises(GatewayRequestError) as exc:
            served_client.rank_batch(announcements)
        assert exc.value.code == "batch_too_large"
        assert exc.value.status == 413

    def test_reload_unknown_model(self, served_client):
        with pytest.raises(GatewayRequestError) as exc:
            served_client.reload("no-such-model")
        assert exc.value.code == "unknown_model"
        assert exc.value.status == 404

    def test_reload_without_registry(self, gw_world, gw_collection,
                                     gw_registry, gateway):
        service = service_from(gw_registry, "dnn", gw_world, gw_collection)
        _server, client = gateway(GatewayApp(service, registry=None))
        with pytest.raises(GatewayRequestError) as exc:
            client.reload("dnn")
        assert exc.value.code == "no_registry"
        assert exc.value.status == 409


class TestHistoryPoisoning:
    """Out-of-universe coin ids must never enter a channel's history —
    they would crash feature encoding on every later request."""

    def test_observe_refuses_out_of_universe_coin(self, served_client,
                                                  test_positives):
        base = make_announcements(test_positives, 1)[0]
        poisoned = Announcement(channel_id=base.channel_id, coin_id=10 ** 9,
                                exchange_id=0, pair="BTC", time=base.time)
        with pytest.raises(GatewayRequestError) as exc:
            served_client.observe(poisoned)
        assert exc.value.code == "bad_request"
        assert "coin universe" in exc.value.message
        # And the channel still ranks fine afterwards.
        probe = Announcement(channel_id=base.channel_id, coin_id=-1,
                             exchange_id=0, pair="BTC", time=base.time)
        assert served_client.rank(probe).ranking.scores

    def test_rank_refuses_out_of_universe_coin(self, served_client,
                                               test_positives):
        # rank auto-observes announcements with a known coin, so the same
        # guard must apply there.
        base = make_announcements(test_positives, 1)[0]
        poisoned = Announcement(channel_id=base.channel_id, coin_id=10 ** 9,
                                exchange_id=0, pair="BTC", time=base.time)
        with pytest.raises(GatewayRequestError) as exc:
            served_client.rank(poisoned)
        assert exc.value.code == "bad_request"


class TestWireRobustness:
    def test_nonfinite_json_tokens_rejected(self, served):
        payload = ('{"schema_version": 1, "announcement": '
                   '{"channel_id": 1, "time": NaN}}').encode()
        status, body = raw_request(served, "POST", "/v1/rank", payload)
        assert_envelope(status, body, expect_status=400,
                        expect_code="bad_json")
        payload = ('{"schema_version": 1, "announcement": '
                   '{"channel_id": 1, "time": Infinity}}').encode()
        status, body = raw_request(served, "POST", "/v1/rank", payload)
        assert_envelope(status, body, expect_status=400,
                        expect_code="bad_json")

    def test_negative_content_length(self, served):
        headers = {"Content-Length": "-5"}
        status, body = raw_request(served, "POST", "/v1/rank",
                                   headers=headers)
        assert_envelope(status, body, expect_status=400,
                        expect_code="bad_request")

    def test_keep_alive_survives_404_with_unread_body(self, served):
        # A 404'd POST must drain its body, or these bytes would be parsed
        # as the next request line on the persistent connection.
        host, port = served.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            body = json.dumps({"schema_version": 1, "junk": "x" * 512})
            connection.request("POST", "/v1/nope", body=body.encode())
            response = connection.getresponse()
            assert response.status == 404
            response.read()
            # Same socket, next request: must parse cleanly.
            connection.request("GET", "/v1/healthz")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
        finally:
            connection.close()


class TestRouting:
    def test_unknown_route(self, served):
        status, body = raw_request(served, "GET", "/v2/healthz")
        assert_envelope(status, body, expect_status=404,
                        expect_code="not_found")

    def test_method_not_allowed(self, served):
        status, body = raw_request(served, "GET", "/v1/rank")
        assert_envelope(status, body, expect_status=405,
                        expect_code="method_not_allowed")
        status, body = raw_request(served, "POST", "/v1/healthz", b"{}")
        assert_envelope(status, body, expect_status=405,
                        expect_code="method_not_allowed")

    def test_other_verbs_get_the_envelope_too(self, served):
        # Not the stdlib's HTML 501 page — the contract holds for every verb.
        status, body = raw_request(served, "PUT", "/v1/rank", b"{}")
        assert_envelope(status, body, expect_status=405,
                        expect_code="method_not_allowed")
        status, body = raw_request(served, "DELETE", "/v1/nowhere")
        assert_envelope(status, body, expect_status=404,
                        expect_code="not_found")

    def test_trailing_slash_is_tolerated(self, served):
        status, body = raw_request(served, "GET", "/v1/healthz/")
        assert status == 200
        assert body["status"] == "ok"

    def test_oversized_declared_body(self, served):
        headers = {"Content-Length": str(64 * 1024 * 1024)}
        status, body = raw_request(served, "POST", "/v1/rank", b"",
                                   headers=headers)
        assert_envelope(status, body, expect_status=413,
                        expect_code="payload_too_large")

    def test_errors_are_counted(self, served):
        raw_request(served, "GET", "/v2/nothing")
        status, body = raw_request(served, "GET", "/v1/stats")
        assert status == 200
        assert body["gateway"]["requests"]["errors"] >= 1
