"""Acceptance: /v1/models/reload swaps versions mid-traffic losslessly.

Requests hammer ``POST /v1/rank`` from several threads while the main
thread hot-swaps the serving artifact.  Every response must be a 200
decoding to a ranking bit-for-bit equal to *one* of the two models'
reference rankings — an in-flight request finishes on the model it
started with, none is dropped, none scores half-old-half-new.
"""

import threading

import pytest

from repro.gateway import GatewayApp
from repro.serving import Announcement
from tests.gateway.conftest import make_announcements, service_from

WORKERS = 4
REQUESTS_PER_WORKER = 10


def stateless_probe(test_positives) -> Announcement:
    """A fixed prediction request (unknown coin → never folded into
    history), so a given model version answers it identically forever."""
    base = make_announcements(test_positives, 1)[0]
    return Announcement(channel_id=base.channel_id, coin_id=-1,
                        exchange_id=0, pair="BTC", time=base.time)


def exact(ranking):
    return tuple((s.coin_id, s.probability) for s in ranking.scores)


@pytest.fixture
def references(gw_world, gw_collection, gw_registry, test_positives):
    probe = stateless_probe(test_positives)
    old = service_from(gw_registry, "snn", gw_world, gw_collection)
    new = service_from(gw_registry, "dnn", gw_world, gw_collection)
    return probe, exact(old.rank_one(probe).ranking), \
        exact(new.rank_one(probe).ranking)


def test_hot_swap_drops_and_corrupts_nothing(gw_world, gw_collection,
                                             gw_registry, gateway,
                                             references):
    probe, expected_old, expected_new = references
    assert expected_old != expected_new, \
        "reference models must be distinguishable for this test to bite"

    service = service_from(gw_registry, "snn", gw_world, gw_collection)
    app = GatewayApp(service, registry=gw_registry)
    _server, client = gateway(app)

    results: list[tuple] = []
    errors: list[BaseException] = []
    lock = threading.Lock()
    start_line = threading.Barrier(WORKERS + 1)

    def hammer() -> None:
        try:
            start_line.wait(timeout=30)
            for _ in range(REQUESTS_PER_WORKER):
                ranking = client.rank(probe).ranking
                with lock:
                    results.append(exact(ranking))
        except BaseException as exc:  # noqa: BLE001 - reported below
            with lock:
                errors.append(exc)

    workers = [threading.Thread(target=hammer) for _ in range(WORKERS)]
    for worker in workers:
        worker.start()
    start_line.wait(timeout=30)
    response = client.reload("dnn")          # swap mid-hammering
    assert response.model["name"] == "dnn"
    for worker in workers:
        worker.join(timeout=120)
        assert not worker.is_alive(), "a worker hung"

    assert not errors, f"requests failed during the swap: {errors[:3]}"
    # Zero dropped requests...
    assert len(results) == WORKERS * REQUESTS_PER_WORKER
    # ...and zero corrupted ones: every ranking is exactly one model's.
    for ranking in results:
        assert ranking in (expected_old, expected_new)

    # After the swap the gateway must answer with the new model, and say so.
    assert exact(client.rank(probe).ranking) == expected_new
    health = client.healthz()
    assert health.reloads == 1
    assert health.model["name"] == "dnn"


def test_reload_of_corrupt_artifact_leaves_champion_serving(
        gw_world, gw_collection, gw_registry, gateway, test_positives,
        tmp_path):
    """Regression (ISSUE 7 satellite): a tampered artifact must be a
    structured refusal, never a half-swapped or crashed gateway."""
    import shutil

    import pytest

    from repro.gateway.client import GatewayRequestError

    # A doomed registry entry: a copy of a good artifact with its weights
    # replaced by garbage.  A separate name so session artifacts stay good.
    source = gw_registry.resolve("dnn")
    mangled = gw_registry.root / "mangled" / "v0001"
    shutil.copytree(source, mangled)
    (mangled / "weights.npz").write_bytes(b"not an npz archive at all")

    service = service_from(gw_registry, "snn", gw_world, gw_collection)
    app = GatewayApp(service, registry=gw_registry)
    _server, client = gateway(app)

    probe = stateless_probe(test_positives)
    before_swap = exact(client.rank(probe).ranking)

    with pytest.raises(GatewayRequestError) as exc:
        client.reload("mangled")
    assert exc.value.status == 409
    assert exc.value.code == "bad_artifact"

    # The champion never stopped serving, identically, and the failed
    # attempt is not counted as a reload.
    assert exact(client.rank(probe).ranking) == before_swap
    health = client.healthz()
    assert health.status == "ok"
    assert health.reloads == 0
    # A subsequent good reload still works — the swap lock was released.
    assert client.reload("dnn").model["name"] == "dnn"


def test_reload_carries_streamed_history_across(gw_world, gw_collection,
                                                gw_registry, gateway,
                                                test_positives):
    service = service_from(gw_registry, "snn", gw_world, gw_collection)
    app = GatewayApp(service, registry=gw_registry)
    _server, client = gateway(app)

    observed = make_announcements(test_positives, 1)[0]
    before = client.observe(observed).history_length
    client.reload("dnn")
    # The replacement service must still hold the streamed announcement.
    assert len(app.service.history(observed.channel_id)) == before

    # Reference: a fresh dnn service given the same observation agrees
    # bit-for-bit with the post-swap gateway.
    witness = service_from(gw_registry, "dnn", gw_world, gw_collection)
    witness.observe(observed)
    probe = Announcement(channel_id=observed.channel_id, coin_id=-1,
                         exchange_id=0, pair="BTC",
                         time=observed.time + 1.0)
    assert exact(client.rank(probe).ranking) == \
        exact(witness.rank_one(probe).ranking)
