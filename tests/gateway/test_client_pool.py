"""GatewayClient keep-alive connection pool (PR 9).

The client keeps one persistent HTTP/1.1 connection per thread.  The
contracts under test:

* repeated requests reuse a single TCP connection;
* a reused socket gone stale (server restart, idle close) is resent
  transparently exactly once — invisible to the retry policy, so
  ``client_retries_total`` and breaker semantics are unchanged;
* an error envelope's body is fully drained, so the next request on the
  same connection never desyncs;
* a timeout is never transparently resent (the server may still be
  processing the first copy);
* ``close()`` drops every pooled connection but leaves the client
  usable.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.gateway import (
    GatewayApp,
    GatewayClient,
    GatewayRequestError,
    GatewayTimeoutError,
)
from repro.gateway.schema import E_UNKNOWN_CHANNEL, SCHEMA_VERSION
from repro.resilience import NO_RETRY
from repro.serving import Announcement
from tests.gateway.conftest import make_announcements, service_from


@pytest.fixture(scope="module")
def pool_app(gw_registry, gw_world, gw_collection) -> GatewayApp:
    return GatewayApp(
        service_from(gw_registry, "dnn", gw_world, gw_collection))


def conns_opened(client: GatewayClient) -> float:
    return client._m_conns.value


class TestKeepAlive:
    def test_many_requests_share_one_connection(self, gateway, pool_app,
                                                test_positives):
        _server, client = gateway(pool_app)
        before = conns_opened(client)
        for _ in range(5):
            assert client.healthz().status == "ok"
        client.rank(make_announcements(test_positives, 1,
                                       coin_known=False)[0])
        assert conns_opened(client) - before == 1

    def test_error_envelope_does_not_desync_the_connection(
            self, gateway, pool_app, test_positives):
        _server, client = gateway(pool_app)
        before = conns_opened(client)
        good = make_announcements(test_positives, 1, coin_known=False)[0]
        assert client.rank(good) is not None
        bad = Announcement(channel_id=10 ** 6, coin_id=-1, exchange_id=0,
                           pair="BTC", time=good.time)
        with pytest.raises(GatewayRequestError) as excinfo:
            client.rank(bad)
        assert excinfo.value.code == E_UNKNOWN_CHANNEL
        # The envelope's body was read in full: the very next exchange on
        # the same socket parses cleanly.
        assert client.rank(good) is not None
        assert client.stats().gateway["requests"]["rank"] >= 3
        assert conns_opened(client) - before == 1

    def test_close_drops_the_pool_but_not_the_client(self, gateway,
                                                     pool_app):
        _server, client = gateway(pool_app)
        before = conns_opened(client)
        assert client.healthz().status == "ok"
        client.close()
        assert client.healthz().status == "ok"  # simply reconnects
        assert conns_opened(client) - before == 2


class _ScriptedServer:
    """A raw-socket HTTP/1.1 server driven by per-request directives.

    Directives (one per expected request, in order):

    * ``"ok"``       — answer 200 with a healthz body, keep the
      connection open;
    * ``"ok-close"`` — answer, then silently close the connection (an
      idle timeout / restart seen from the client side);
    * ``"stall"``    — read the request and never answer.
    """

    def __init__(self, script: list[str]):
        self.script = list(script)
        self.requests_served = 0
        self._finished = threading.Event()
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(8)
        self.port = self.listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def shutdown(self) -> None:
        self._finished.set()
        self._thread.join(timeout=30.0)

    def _read_request(self, conn: socket.socket) -> bool:
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = conn.recv(65536)
            if not chunk:
                return False
            data += chunk
        return True

    def _serve(self) -> None:
        body = (b'{"schema_version": %d, "status": "ok", "model": {}, '
                b'"uptime_seconds": 1.0, "reloads": 0}'
                % SCHEMA_VERSION)
        response = (b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: " + str(len(body)).encode() +
                    b"\r\n\r\n" + body)
        conn = None
        try:
            while self.script:
                if conn is None:
                    conn, _addr = self.listener.accept()
                if not self._read_request(conn):
                    conn.close()
                    conn = None
                    continue
                directive = self.script.pop(0)
                self.requests_served += 1
                if directive == "stall":
                    continue  # never answer; the client's timeout fires
                conn.sendall(response)
                if directive == "ok-close":
                    conn.close()
                    conn = None
            # Script exhausted: hold any open connection (a stalled
            # client must see silence, not a close) until the test is
            # done with its assertions.
            self._finished.wait(30.0)
        except OSError:
            pass
        finally:
            if conn is not None:
                conn.close()
            self.listener.close()


class TestStaleSocketResend:
    def test_reused_stale_socket_is_resent_without_a_retry(self):
        # Request 1 establishes the keep-alive connection, then the
        # server silently closes it; request 2 finds the socket stale and
        # must succeed by transparent resend even with retries disabled.
        server = _ScriptedServer(["ok-close", "ok"])
        client = GatewayClient(f"http://127.0.0.1:{server.port}",
                               retry=NO_RETRY)
        conns_before = conns_opened(client)
        retries_before = client._m_retries.labels(
            endpoint="healthz").value()
        assert client.healthz().status == "ok"
        assert client.healthz().status == "ok"
        assert server.requests_served == 2
        assert conns_opened(client) - conns_before == 2
        assert client._m_retries.labels(endpoint="healthz").value() \
            == retries_before
        client.close()
        server.shutdown()

    def test_timeout_on_a_reused_socket_is_never_resent(self):
        server = _ScriptedServer(["ok", "stall"])
        client = GatewayClient(f"http://127.0.0.1:{server.port}",
                               timeout=0.5, retry=NO_RETRY)
        assert client.healthz().status == "ok"
        with pytest.raises(GatewayTimeoutError):
            client.healthz()
        # The stalled request reached the server once and exactly once.
        assert server.requests_served == 2
        client.close()
        server.shutdown()
