"""Shared fixtures for the gateway tests.

One tiny world + collection per session; one briefly trained predictor
per ranker family, published into a session-scoped registry (the
acceptance criterion covers snn/dnn/gru/tcn artifacts).  ``gateway``
starts a real :class:`ThreadingHTTPServer` on a free port and tears it
down after the test.
"""

from __future__ import annotations

import pytest

from repro.core import (
    TargetCoinPredictor,
    Trainer,
    make_model,
    snn_config_for,
)
from repro.data import collect
from repro.features import FeatureAssembler
from repro.gateway import GatewayClient, serve_in_thread
from repro.registry import ModelRegistry
from repro.serving import Announcement, PredictionService
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig

GATEWAY_ARCHS = ("snn", "dnn", "gru", "tcn")


@pytest.fixture(scope="session")
def gw_world():
    return SyntheticWorld.generate(ReproConfig.tiny())


@pytest.fixture(scope="session")
def gw_collection(gw_world):
    return collect(gw_world)


@pytest.fixture(scope="session")
def gw_registry(gw_world, gw_collection, tmp_path_factory) -> ModelRegistry:
    """A registry holding one briefly trained artifact per architecture."""
    assembler = FeatureAssembler(gw_world, gw_collection.dataset)
    assembled = assembler.assemble()
    registry = ModelRegistry(tmp_path_factory.mktemp("gateway-registry"))
    for name in GATEWAY_ARCHS:
        model = make_model(name, snn_config_for(assembled), seed=0)
        Trainer(epochs=1, seed=0).fit(
            model, assembled.train, assembled.validation
        )
        predictor = TargetCoinPredictor(
            gw_world, gw_collection.dataset, model, assembler
        )
        registry.publish(predictor, name, provenance={"model": name})
    return registry


@pytest.fixture(scope="session")
def test_positives(gw_collection):
    positives = [
        e for e in gw_collection.dataset.examples
        if e.label == 1 and e.split == "test"
    ]
    assert len(positives) >= 3
    return positives


def make_announcements(positives, n: int, *,
                       coin_known: bool = True) -> list[Announcement]:
    return [
        Announcement(
            channel_id=e.channel_id,
            coin_id=e.coin_id if coin_known else -1,
            exchange_id=0, pair="BTC", time=e.time,
        )
        for e in positives[:n]
    ]


def service_from(registry: ModelRegistry, name: str, world,
                 collection) -> PredictionService:
    """A fresh service booted from the registry's latest ``name``."""
    return PredictionService.from_artifact(
        registry.resolve(name), world, collection.dataset
    )


@pytest.fixture
def gateway():
    """Factory starting real HTTP gateways; all shut down on teardown."""
    servers = []

    def start(app) -> tuple:
        server, _thread = serve_in_thread(app)
        servers.append(server)
        return server, GatewayClient(server.url)

    yield start
    for server in servers:
        server.shutdown()
        server.server_close()
