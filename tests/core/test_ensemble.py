"""Tests for rank-average score ensembling."""

import numpy as np
import pytest

from repro.core.ensemble import ScoreEnsemble, rank_normalize
from tests.core.test_train_eval import synthetic_split


class TestRankNormalize:
    def test_monotone(self):
        scores = np.array([0.1, 0.9, 0.5])
        ranks = rank_normalize(scores)
        assert ranks[1] > ranks[2] > ranks[0]

    def test_range(self):
        ranks = rank_normalize(np.random.default_rng(0).normal(size=50))
        assert ranks.min() > 0 and ranks.max() <= 1.0

    def test_ties_share_rank(self):
        ranks = rank_normalize(np.array([0.5, 0.5, 0.1]))
        assert ranks[0] == ranks[1]


class TestScoreEnsemble:
    def test_single_model_preserves_order(self):
        split = synthetic_split(seed=0)
        scores = np.random.default_rng(1).random(len(split))
        blended = ScoreEnsemble().combine(split, [scores])
        for list_id in np.unique(split.list_id):
            mask = split.list_id == list_id
            assert np.array_equal(np.argsort(scores[mask]),
                                  np.argsort(blended[mask]))

    def test_ensemble_of_complementary_models_wins(self):
        """Two noisy experts with independent errors blend into a better one."""
        from repro.core import evaluate_scores

        split = synthetic_split(seed=3, n_lists=150, list_size=12, signal=0.0)
        rng = np.random.default_rng(0)
        truth = split.label.astype(float)
        expert_a = truth + rng.normal(0, 0.9, len(truth))
        expert_b = truth + rng.normal(0, 0.9, len(truth))
        blended = ScoreEnsemble().combine(split, [expert_a, expert_b])
        hr_a = evaluate_scores(split, expert_a, ks=(1,))[1]
        hr_b = evaluate_scores(split, expert_b, ks=(1,))[1]
        hr_mix = evaluate_scores(split, blended, ks=(1,))[1]
        assert hr_mix >= max(hr_a, hr_b) - 0.02

    def test_weights_respected(self):
        split = synthetic_split(seed=4, n_lists=20, list_size=10)
        rng = np.random.default_rng(2)
        a = rng.random(len(split))
        b = rng.random(len(split))
        heavy_a = ScoreEnsemble(weights=[0.99, 0.01]).combine(split, [a, b])
        for list_id in np.unique(split.list_id)[:5]:
            mask = split.list_id == list_id
            assert np.array_equal(np.argsort(a[mask]), np.argsort(heavy_a[mask]))

    def test_validation(self):
        split = synthetic_split(seed=5)
        with pytest.raises(ValueError):
            ScoreEnsemble().combine(split, [])
        with pytest.raises(ValueError):
            ScoreEnsemble().combine(split, [np.zeros(3)])
        with pytest.raises(ValueError):
            ScoreEnsemble(weights=[1.0]).combine(
                split, [np.zeros(len(split)), np.zeros(len(split))]
            )
