"""Tests for SNN, the baseline rankers and the factories."""

import numpy as np
import pytest

from repro.core import (
    ALL_MODEL_NAMES,
    Batch,
    ClassicRanker,
    DEEP_MODEL_NAMES,
    SNN,
    SNNConfig,
    make_model,
)
from repro.nn import bce_with_logits


def tiny_config(**overrides) -> SNNConfig:
    defaults = dict(
        n_channels=6, n_coin_ids=51, n_numeric=7, seq_len=8, n_seq_numeric=4
    )
    defaults.update(overrides)
    return SNNConfig(**defaults)


def random_batch(config: SNNConfig, batch_size: int = 12, seed: int = 0) -> Batch:
    rng = np.random.default_rng(seed)
    return Batch(
        channel_idx=rng.integers(0, config.n_channels, batch_size),
        coin_idx=rng.integers(0, config.n_coin_ids, batch_size),
        numeric=rng.normal(size=(batch_size, config.n_numeric)),
        seq_coin_idx=rng.integers(0, config.n_coin_ids,
                                  (batch_size, config.seq_len)),
        seq_numeric=rng.normal(size=(batch_size, config.seq_len,
                                     config.n_seq_numeric)),
        seq_mask=(rng.random((batch_size, config.seq_len)) > 0.3).astype(float),
        label=(rng.random(batch_size) > 0.8).astype(float),
    )


class TestSNN:
    def test_forward_shape(self):
        config = tiny_config()
        model = SNN(config, np.random.default_rng(0))
        model.eval()
        batch = random_batch(config)
        assert model(batch).shape == (12,)

    def test_all_parameters_receive_gradients(self):
        config = tiny_config()
        model = SNN(config, np.random.default_rng(0))
        model.eval()
        batch = random_batch(config)
        loss = bce_with_logits(model(batch), batch.label)
        loss.backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, name

    def test_coin_embedding_shared_between_target_and_sequence(self):
        """The paper shares one latent space for target and sequence coins."""
        config = tiny_config()
        model = SNN(config, np.random.default_rng(0))
        model.eval()
        batch = random_batch(config)
        loss = bce_with_logits(model(batch), batch.label)
        loss.backward()
        # One table exists; gradient reflects both usages (rows touched by
        # either the candidate ids or the sequence ids).
        touched = set(batch.coin_idx.tolist()) | set(batch.seq_coin_idx.ravel().tolist())
        grad_rows = set(np.flatnonzero(
            np.abs(model.coin_embedding.weight.grad).sum(axis=1) > 0
        ).tolist())
        assert grad_rows <= touched

    def test_pretrained_coin_vectors(self):
        config = tiny_config()
        vectors = np.random.default_rng(1).normal(
            size=(config.n_coin_ids, config.coin_emb_dim)
        )
        model = SNN(config, np.random.default_rng(0), coin_vectors=vectors,
                    freeze_coin_embedding=True)
        assert np.allclose(model.coin_embedding.weight.data, vectors)
        assert not model.coin_embedding.weight.requires_grad

    def test_pretrained_shape_mismatch_rejected(self):
        config = tiny_config()
        with pytest.raises(ValueError):
            SNN(config, np.random.default_rng(0),
                coin_vectors=np.zeros((3, 3)))

    def test_attention_heatmap_shape(self):
        config = tiny_config()
        model = SNN(config, np.random.default_rng(0))
        heatmap = model.attention_heatmap()
        expected_heads = config.n_seq_features * config.attention_channels
        assert heatmap.shape == (expected_heads, config.seq_len)
        assert np.allclose(heatmap.sum(axis=1), 1.0)

    def test_pad_mask_blocks_padded_positions(self):
        """Fully-padded histories contribute a constant, not noise."""
        config = tiny_config()
        model = SNN(config, np.random.default_rng(0))
        model.eval()
        batch = random_batch(config)
        batch.seq_mask[:] = 0.0
        h1 = model.encode_sequence(batch).numpy()
        batch.seq_numeric = batch.seq_numeric + 100.0  # must not matter
        h2 = model.encode_sequence(batch).numpy()
        assert np.allclose(h1, h2)


class TestBaselines:
    @pytest.mark.parametrize("name", DEEP_MODEL_NAMES)
    def test_every_deep_model_forward(self, name):
        config = tiny_config()
        model = make_model(name, config, seed=0)
        model.eval()
        batch = random_batch(config)
        out = model(batch)
        assert out.shape == (12,)
        assert np.isfinite(out.numpy()).all()

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            make_model("transformer", tiny_config())

    def test_dnn_ignores_sequence(self):
        config = tiny_config()
        model = make_model("dnn", config, seed=0)
        model.eval()
        batch = random_batch(config)
        base = model(batch).numpy()
        batch.seq_numeric = batch.seq_numeric + 50.0
        assert np.allclose(model(batch).numpy(), base)

    def test_sequence_models_use_sequence(self):
        config = tiny_config()
        for name in ("lstm", "tcn", "snn"):
            model = make_model(name, config, seed=0)
            model.eval()
            batch = random_batch(config)
            base = model(batch).numpy()
            batch.seq_numeric = batch.seq_numeric + 5.0
            assert not np.allclose(model(batch).numpy(), base), name


class TestClassicRanker:
    def _split(self, seed=0, n=400):
        from repro.features.assembler import AssembledSplit

        rng = np.random.default_rng(seed)
        label = (rng.random(n) < 0.1).astype(float)
        # Signal: one numeric column correlates with the label.
        numeric = rng.normal(size=(n, 5))
        numeric[:, 0] += label * 1.5
        return AssembledSplit(
            channel_idx=rng.integers(0, 4, n),
            coin_idx=rng.integers(0, 30, n),
            numeric=numeric,
            seq_coin_idx=np.zeros((n, 4), dtype=int),
            seq_numeric=np.zeros((n, 4, 2)),
            seq_mask=np.zeros((n, 4)),
            label=label,
            list_id=np.repeat(np.arange(n // 10), 10),
        )

    @pytest.mark.parametrize("kind", ["lr", "rf"])
    def test_fit_predict(self, kind):
        split = self._split()
        ranker = ClassicRanker(kind, seed=0).fit(split)
        probs = ranker.predict_proba(split)
        assert probs.shape == (len(split),)
        from repro.ml import roc_auc

        assert roc_auc(split.label, probs) > 0.75

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            ClassicRanker("svm")
