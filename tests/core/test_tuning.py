"""Tests for the hyper-parameter search utilities."""

import numpy as np
import pytest

from repro.core.tuning import grid_search, random_search
from repro.features.assembler import AssembledDataset

from tests.core.test_train_eval import synthetic_split


@pytest.fixture(scope="module")
def assembled():
    return AssembledDataset(
        train=synthetic_split(seed=0, n_lists=40),
        validation=synthetic_split(seed=1, n_lists=15),
        test=synthetic_split(seed=2, n_lists=15),
        n_channels=6,
        n_coin_ids=51,
        sequence_length=8,
    )


class TestGridSearch:
    def test_explores_full_grid(self, assembled):
        result = grid_search(
            assembled,
            grid={"epochs": [1, 2], "lr": [1e-3, 1e-2]},
            model_name="dnn",
        )
        assert len(result.trials) == 4
        assert result.best is not None
        assert result.best.validation_hr == max(
            t.validation_hr for t in result.trials
        )

    def test_model_params_routed(self, assembled):
        result = grid_search(
            assembled,
            grid={"epochs": [1], "dropout": [0.0, 0.3]},
            model_name="dnn",
        )
        assert {t.params["dropout"] for t in result.trials} == {0.0, 0.3}

    def test_unknown_key_rejected(self, assembled):
        with pytest.raises(KeyError):
            grid_search(assembled, grid={"bogus": [1]}, model_name="dnn")

    def test_empty_grid_rejected(self, assembled):
        with pytest.raises(ValueError):
            grid_search(assembled, grid={}, model_name="dnn")

    def test_evaluate_test_populates_hr(self, assembled):
        result = grid_search(
            assembled, grid={"epochs": [1]}, model_name="dnn",
            evaluate_test=True,
        )
        assert result.trials[0].test_hr


class TestRandomSearch:
    def test_runs_requested_trials(self, assembled):
        result = random_search(
            assembled,
            space={"epochs": [1, 2], "lr": [1e-3, 3e-3, 1e-2]},
            n_trials=3,
            model_name="dnn",
        )
        assert len(result.trials) == 3
        for trial in result.trials:
            assert trial.params["epochs"] in (1, 2)
            assert trial.params["lr"] in (1e-3, 3e-3, 1e-2)

    def test_invalid_trials(self, assembled):
        with pytest.raises(ValueError):
            random_search(assembled, space={"epochs": [1]}, n_trials=0)
