"""End-to-end learnability on a tiny world: the whole stack wired together.

These are the repository's most important integration tests — they verify
that the signal planted by the simulator survives the collection pipeline
and is recoverable by the models.
"""

import numpy as np
import pytest

from repro.core import (
    Trainer,
    evaluate_scores,
    make_model,
    predict_scores,
    random_ranker_baseline,
    run_coin_embedding_experiment,
    snn_config_for,
    train_coin_embeddings,
)
from repro.data import collect
from repro.features import FeatureAssembler
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld.generate(ReproConfig.tiny())


@pytest.fixture(scope="module")
def assembled(world):
    result = collect(world, n_label=600)
    return FeatureAssembler(world, result.dataset).assemble()


class TestEndToEndLearning:
    def test_snn_beats_random_ranker(self, assembled):
        """SNN ranks far above chance even on the tiny world.

        The tiny test split has only a handful of lists, so we compare
        against the *analytic* random expectation (k / list size averaged
        over lists) rather than a sampled random ranker.
        """
        config = snn_config_for(assembled)
        model = make_model("snn", config, seed=0)
        Trainer(epochs=6, seed=0).fit(model, assembled.train, assembled.validation)
        hr = evaluate_scores(assembled.test, predict_scores(model, assembled.test))
        list_sizes = np.bincount(assembled.test.list_id)
        list_sizes = list_sizes[list_sizes > 0]
        expected_random_10 = float(np.mean(np.minimum(10 / list_sizes, 1.0)))
        assert hr[10] > expected_random_10
        assert hr[20] >= hr[10]

    def test_training_is_reproducible(self, assembled):
        config = snn_config_for(assembled)
        scores = []
        for _ in range(2):
            model = make_model("dnn", config, seed=1)
            Trainer(epochs=2, seed=1).fit(model, assembled.train)
            scores.append(predict_scores(model, assembled.test))
        assert np.allclose(scores[0], scores[1])


class TestColdStartEndToEnd:
    def test_word_embeddings_cover_most_coins(self, world):
        matrix, model = train_coin_embeddings(world, mode="skipgram", epochs=1)
        nonzero = (np.abs(matrix).sum(axis=1) > 0).mean()
        assert nonzero > 0.5
        # PAD row stays zero.
        assert np.allclose(matrix[-1], 0.0)

    def test_embedding_experiment_runs_all_variants(self, world, assembled):
        """Functional check; the Table 6 ordering is asserted at benchmark
        scale where the test split is large enough to be meaningful."""
        outcome = run_coin_embedding_experiment(
            world, assembled, trainer=Trainer(epochs=3, seed=0),
            variants=("e2e", "sg", "snn_s"),
        )
        assert set(outcome.hr) == {"e2e", "sg", "snn_s"}
        for name, hr in outcome.hr.items():
            assert all(0.0 <= v <= 1.0 for v in hr.values()), name
            values = [hr[k] for k in sorted(hr)]
            assert values == sorted(values), f"{name} HR must grow with k"
        assert set(outcome.models) == {"e2e", "sg", "snn_s"}
