"""Tests for the deployment predictor and the §6.2 feature transfer."""

import numpy as np
import pytest

from repro.core import Trainer, make_model, snn_config_for
from repro.core.predictor import TargetCoinPredictor
from repro.core.transfer import (
    AugmentedClassicRanker,
    SequenceFeatureExtractor,
    run_transfer_experiment,
)
from repro.data import collect
from repro.features import FeatureAssembler
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig

CFG = ReproConfig.tiny()


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld.generate(CFG)


@pytest.fixture(scope="module")
def collection(world):
    return collect(world)


@pytest.fixture(scope="module")
def assembled(world, collection):
    return FeatureAssembler(world, collection.dataset).assemble()


@pytest.fixture(scope="module")
def snn(assembled):
    model = make_model("snn", snn_config_for(assembled), seed=0)
    Trainer(epochs=4, seed=0).fit(model, assembled.train, assembled.validation)
    return model


class TestPredictor:
    @pytest.fixture(scope="class")
    def predictor(self, world, collection, snn):
        return TargetCoinPredictor(world, collection.dataset, snn)

    def _an_event(self, collection):
        positives = [e for e in collection.dataset.examples
                     if e.label == 1 and e.split == "test"]
        return positives[0]

    def test_ranking_covers_all_candidates(self, world, collection, predictor):
        event = self._an_event(collection)
        ranking = predictor.rank(event.channel_id, 0, event.time)
        candidates = predictor.candidates(0, event.time)
        assert len(ranking.scores) == len(candidates)

    def test_probabilities_sorted_and_valid(self, collection, predictor):
        event = self._an_event(collection)
        ranking = predictor.rank(event.channel_id, 0, event.time)
        probs = [s.probability for s in ranking.scores]
        assert probs == sorted(probs, reverse=True)
        assert all(0.0 <= p <= 1.0 for p in probs)

    def test_symbols_match_coin_ids(self, world, collection, predictor):
        event = self._an_event(collection)
        ranking = predictor.rank(event.channel_id, 0, event.time)
        for score in ranking.top(5):
            assert world.coins.symbols[score.coin_id] == score.symbol

    def test_rank_of_returns_position(self, collection, predictor):
        event = self._an_event(collection)
        ranking = predictor.rank(event.channel_id, 0, event.time)
        first = ranking.scores[0].coin_id
        assert ranking.rank_of(first) == 1
        assert ranking.rank_of(-99) == -1

    def test_unknown_channel_rejected(self, predictor, collection):
        event = self._an_event(collection)
        with pytest.raises(KeyError):
            predictor.rank(123, 0, event.time)

    def test_pairing_majors_never_candidates(self, collection, predictor):
        event = self._an_event(collection)
        ranking = predictor.rank(event.channel_id, 0, event.time)
        ids = {s.coin_id for s in ranking.scores}
        assert not ids & {0, 1, 2}


class TestTransfer:
    def test_extractor_shape(self, assembled, snn):
        features = SequenceFeatureExtractor(snn).transform(assembled.test)
        assert features.shape == (len(assembled.test), snn.attention.output_dim)
        assert np.isfinite(features).all()

    def test_augmented_ranker_runs(self, assembled, snn):
        ranker = AugmentedClassicRanker("lr", snn, seed=0).fit(assembled.train)
        probs = ranker.predict_proba(assembled.test)
        assert probs.shape == (len(assembled.test),)
        assert ((probs >= 0) & (probs <= 1)).all()

    def test_transfer_experiment_keys(self, assembled, snn):
        results = run_transfer_experiment(assembled, snn)
        assert set(results) == {"lr", "lr+h_s", "rf", "rf+h_s"}
        for hr in results.values():
            values = [hr[k] for k in sorted(hr)]
            assert values == sorted(values)
