"""Tests for the trainer, evaluation and the cold-start machinery."""

import numpy as np
import pytest

from repro.core import (
    CoinIdOnlyModel,
    SNNConfig,
    Trainer,
    embedding_l1_norms,
    evaluate_scores,
    make_model,
    predict_scores,
    random_ranker_baseline,
)
from repro.features.assembler import AssembledSplit

from tests.core.test_models import random_batch, tiny_config


def synthetic_split(seed=0, n_lists=30, list_size=10, seq_len=8,
                    n_seq_numeric=4, signal=2.0) -> AssembledSplit:
    """Ranking data where one numeric column identifies the positive."""
    rng = np.random.default_rng(seed)
    n = n_lists * list_size
    label = np.zeros(n)
    label[::list_size] = 1.0
    numeric = rng.normal(size=(n, 7))
    numeric[:, 0] += label * signal
    return AssembledSplit(
        channel_idx=rng.integers(0, 6, n),
        coin_idx=rng.integers(0, 50, n),
        numeric=numeric,
        seq_coin_idx=rng.integers(0, 50, (n, seq_len)),
        seq_numeric=rng.normal(size=(n, seq_len, n_seq_numeric)) * 0.1,
        seq_mask=np.ones((n, seq_len)),
        label=label,
        list_id=np.repeat(np.arange(n_lists), list_size),
    )


class TestTrainer:
    def test_loss_decreases(self):
        config = tiny_config()
        model = make_model("dnn", config, seed=0)
        train = synthetic_split(seed=0)
        result = Trainer(epochs=6, seed=0).fit(model, train)
        assert result.train_losses[-1] < result.train_losses[0]

    def test_learns_synthetic_signal(self):
        config = tiny_config()
        model = make_model("dnn", config, seed=0)
        train = synthetic_split(seed=0)
        test = synthetic_split(seed=99)
        Trainer(epochs=10, seed=0).fit(model, train)
        hr = evaluate_scores(test, predict_scores(model, test), ks=(1,))
        assert hr[1] > 0.6

    def test_best_epoch_state_restored(self):
        config = tiny_config()
        model = make_model("dnn", config, seed=0)
        train = synthetic_split(seed=0)
        val = synthetic_split(seed=5)
        result = Trainer(epochs=4, seed=0).fit(model, train, val)
        assert 0 <= result.best_epoch < 4
        assert len(result.val_metrics) == 4

    def test_deterministic_given_seed(self):
        config = tiny_config()
        train = synthetic_split(seed=0)
        scores = []
        for _ in range(2):
            model = make_model("dnn", config, seed=3)
            Trainer(epochs=2, seed=3).fit(model, train)
            scores.append(predict_scores(model, train))
        assert np.allclose(scores[0], scores[1])

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            Trainer(epochs=0)


class TestEvaluation:
    def test_perfect_scores_hit_everything(self):
        split = synthetic_split(seed=1)
        hr = evaluate_scores(split, split.label.astype(float))
        assert hr[1] == 1.0

    def test_random_baseline_near_uniform(self):
        split = synthetic_split(seed=2, n_lists=200, list_size=10)
        hr = random_ranker_baseline(split, ks=(1, 5))
        assert abs(hr[1] - 0.1) < 0.07
        assert abs(hr[5] - 0.5) < 0.12

    def test_score_alignment_enforced(self):
        split = synthetic_split(seed=3)
        with pytest.raises(ValueError):
            evaluate_scores(split, np.zeros(3))


class TestColdStart:
    def test_coin_id_only_model_shapes(self):
        config = tiny_config()
        model = CoinIdOnlyModel(config.n_coin_ids, 8, np.random.default_rng(0))
        model.eval()
        batch = random_batch(config)
        assert model(batch).shape == (12,)

    def test_frozen_pretrained_variant(self):
        config = tiny_config()
        vectors = np.random.default_rng(0).normal(size=(config.n_coin_ids, 8))
        model = CoinIdOnlyModel(config.n_coin_ids, 8, np.random.default_rng(0),
                                coin_vectors=vectors)
        assert not model.coin_embedding.weight.requires_grad

    def test_e2e_embeddings_separate_trained_untrained(self):
        """Training moves only seen coins' embeddings — the Figure 9 effect."""
        config = tiny_config()
        model = CoinIdOnlyModel(config.n_coin_ids, 8, np.random.default_rng(0))
        train = synthetic_split(seed=0)
        train.coin_idx = train.coin_idx % 20  # coins 20+ never seen
        initial = model.coin_embedding.weight.data.copy()
        Trainer(epochs=4, seed=0).fit(model, train)
        moved = np.abs(model.coin_embedding.weight.data - initial).sum(axis=1)
        assert moved[:20].mean() > moved[20:-1].mean()

    def test_embedding_l1_norm_study_grouping(self):
        train = synthetic_split(seed=0)
        test = synthetic_split(seed=1)
        matrix = np.random.default_rng(0).normal(size=(51, 8))
        study = embedding_l1_norms(matrix, train, test)
        n_test_pos = int(test.label.sum())
        assert len(study.test_positive_warm) + len(study.test_positive_cold) == n_test_pos
        assert len(study.train_positive) == int(train.label.sum())
