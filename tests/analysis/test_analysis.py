"""Tests for the §4 analyses and the attention-pattern tools."""

import numpy as np
import pytest

from repro.analysis import (
    channel_level_study,
    classify_patterns,
    cohort_edges,
    coin_level_study,
    dominant_period,
    event_study,
    exchange_distribution,
    render_heatmap,
    semantic_study,
)
from repro.data import collect
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig

CFG = ReproConfig.tiny()


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld.generate(CFG)


@pytest.fixture(scope="module")
def samples(world):
    return collect(world, n_label=600).samples


class TestCoinLevel:
    def test_cohort_edges_partition(self):
        edges = cohort_edges(100, 4)
        assert edges == [(0, 25), (25, 50), (50, 75), (75, 100)]

    def test_pumped_coins_are_midcap(self, world, samples):
        study = coin_level_study(world, samples)
        cap = study.summaries["market_cap"]
        top = cap[[k for k in cap if k.startswith("top_1_")][0]]
        # Pumped coins are below the very top cohort by cap ...
        assert cap["pumped"].median < top.median
        # ... but well above the bottom cohort.
        bottom_key = sorted(
            (k for k in cap if k.startswith("top_")),
            key=lambda k: int(k.split("_")[1]),
        )[-1]
        assert cap["pumped"].median > cap[bottom_key].median

    def test_repump_rate_substantial(self, world, samples):
        study = coin_level_study(world, samples)
        assert 0.3 < study.repump_rate < 0.95

    def test_closest_cohort_returns_cohort_name(self, world, samples):
        study = coin_level_study(world, samples)
        assert study.closest_cohort("market_cap").startswith("top_")

    def test_empty_samples_rejected(self, world):
        with pytest.raises(ValueError):
            coin_level_study(world, [])


class TestEventLevel:
    @pytest.fixture(scope="class")
    def study(self, world):
        return event_study(world, max_events=40)

    def test_exchange_distribution_binance_heavy(self, world):
        shares = exchange_distribution(world)
        assert shares["Binance"] == max(shares.values())
        assert abs(sum(shares.values()) - 1.0) < 1e-9

    def test_price_curve_peaks_at_pump(self, study):
        grid = study.minute_grid
        peak_idx = int(np.argmax(study.avg_price_curve))
        assert -5 <= grid[peak_idx] <= 30

    def test_price_rises_into_pump(self, study):
        grid = study.minute_grid
        at = lambda minute: study.avg_price_curve[np.argmin(np.abs(grid - minute))]
        assert at(-60) > at(-60 * 60)  # 1h before > 60h before

    def test_volume_spike_at_pump(self, study):
        grid = study.minute_grid
        pump_region = (grid >= 0) & (grid <= 30)
        early = grid < -65 * 60
        assert study.avg_volume_curve[pump_region].max() > \
            5.0 * study.avg_volume_curve[early].mean()

    def test_pumped_returns_dominate_random(self, study):
        for x in (24, 48, 60):
            assert study.window_returns_pumped[x] > \
                study.window_returns_random[x] + 0.01

    def test_peak_window_near_60(self, study):
        assert study.peak_window() in (36, 48, 60, 72)

    def test_prepump_example_present(self, study):
        assert "volume" in study.prepump_example


class TestChannelLevel:
    def test_homogeneity_ratio_below_one(self, world, samples):
        study = channel_level_study(world, samples, min_history=4)
        for feature, scatter in study.scatters.items():
            assert scatter.homogeneity_ratio < 1.0, feature

    def test_scatter_shapes_align(self, world, samples):
        study = channel_level_study(world, samples, min_history=4)
        for scatter in study.scatters.values():
            assert len(scatter.channel_index) == len(scatter.values)

    def test_requires_history(self, world, samples):
        with pytest.raises(ValueError):
            channel_level_study(world, samples, min_history=10**6)


class TestSemantic:
    def test_ordering_same_channel_highest(self, world, samples):
        study = semantic_study(world, samples, n_pairs=300, seed=0)
        assert study.mean("same_channel") > study.mean("all_coins")

    def test_distributions_bounded(self, world, samples):
        study = semantic_study(world, samples, n_pairs=200, seed=1)
        for sims in study.similarities.values():
            assert (sims <= 1.0 + 1e-9).all() and (sims >= -1.0 - 1e-9).all()


class TestAttentionPatterns:
    def test_proximity_classification(self):
        proximity_head = np.array([[0.7, 0.2, 0.05, 0.05]])
        skip_head = np.array([[0.05, 0.05, 0.2, 0.7]])
        patterns = classify_patterns([proximity_head, skip_head])
        assert patterns[0].is_proximity
        assert patterns[1].is_skip_correlated

    def test_mean_position_ordering(self):
        early = np.array([[0.9, 0.1, 0.0]])
        late = np.array([[0.0, 0.1, 0.9]])
        patterns = classify_patterns([early, late])
        assert patterns[0].mean_position < patterns[1].mean_position

    def test_dominant_period_detects_cycles(self):
        n = 24
        head = np.zeros(n)
        head[::6] = 1.0  # period 6
        period = dominant_period(head / head.sum())
        assert period is not None
        assert abs(period - 6.0) < 1.5

    def test_render_heatmap_lines(self):
        art = render_heatmap(np.random.default_rng(0).random((3, 10)))
        assert len(art.splitlines()) == 3

    def test_invalid_heatmap_shape(self):
        with pytest.raises(ValueError):
            classify_patterns([np.zeros(5)])
