"""Tests for bootstrap confidence intervals and paired comparisons."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    bootstrap_hr,
    mae_bootstrap,
    paired_bootstrap_winrate,
)


def make_list(rank: int, size: int = 10) -> np.ndarray:
    scores = np.linspace(1.0, 0.0, size)
    labels = np.zeros(size)
    labels[rank - 1] = 1
    return np.stack([scores, labels], axis=1)


class TestBootstrapHr:
    def test_point_estimate_matches_hr(self):
        lists = [make_list(1), make_list(5)]
        interval = bootstrap_hr(lists, k=3, n_resamples=200, seed=0)
        assert interval.point == pytest.approx(0.5)

    def test_interval_contains_point(self):
        rng = np.random.default_rng(0)
        lists = [make_list(int(rng.integers(1, 10))) for _ in range(40)]
        interval = bootstrap_hr(lists, k=3, n_resamples=300, seed=0)
        assert interval.low <= interval.point <= interval.high
        assert interval.contains(interval.point)

    def test_degenerate_all_hits_gives_tight_interval(self):
        lists = [make_list(1) for _ in range(20)]
        interval = bootstrap_hr(lists, k=1, n_resamples=100, seed=0)
        assert interval.low == interval.high == 1.0

    def test_more_lists_tighter_interval(self):
        rng = np.random.default_rng(1)
        small = [make_list(int(rng.integers(1, 10))) for _ in range(10)]
        large = [make_list(int(rng.integers(1, 10))) for _ in range(200)]
        i_small = bootstrap_hr(small, k=3, n_resamples=300, seed=0)
        i_large = bootstrap_hr(large, k=3, n_resamples=300, seed=0)
        assert (i_large.high - i_large.low) < (i_small.high - i_small.low)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_hr([], k=1)
        with pytest.raises(ValueError):
            bootstrap_hr([make_list(1)], k=1, confidence=1.5)


class TestPairedWinrate:
    def test_identical_models_always_tie(self):
        lists = [make_list(3) for _ in range(15)]
        rate = paired_bootstrap_winrate(lists, lists, k=3, n_resamples=100)
        assert rate == 1.0  # ">=" comparison: ties count as wins

    def test_dominant_model_wins(self):
        better = [make_list(1) for _ in range(25)]
        worse = [make_list(8) for _ in range(25)]
        rate = paired_bootstrap_winrate(better, worse, k=3, n_resamples=200)
        assert rate == 1.0
        reverse = paired_bootstrap_winrate(worse, better, k=3, n_resamples=200)
        assert reverse == 0.0

    def test_alignment_required(self):
        with pytest.raises(ValueError):
            paired_bootstrap_winrate([make_list(1)], [], k=1)


class TestMaeBootstrap:
    def test_point_is_mean_abs(self):
        interval = mae_bootstrap(np.array([1.0, -3.0]), n_resamples=100)
        assert interval.point == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mae_bootstrap(np.array([]))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_property_interval_brackets_point(self, seed):
        rng = np.random.default_rng(seed)
        errors = rng.normal(size=60)
        interval = mae_bootstrap(errors, n_resamples=200, seed=seed)
        assert interval.low - 1e-12 <= interval.point <= interval.high + 1e-12
