"""Tests for feature generation and the assembler."""

import numpy as np
import pytest

from repro.data import PnDSample, collect
from repro.features import (
    COIN_FEATURE_NAMES,
    FeatureAssembler,
    MARKET_FEATURE_NAMES,
    NUMERIC_FEATURE_NAMES,
    coin_feature_matrix,
    encode_history,
    market_feature_matrix,
    pad_coin_id,
)
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig

CFG = ReproConfig.tiny()


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld.generate(CFG)


@pytest.fixture(scope="module")
def assembled(world):
    result = collect(world, n_label=600)
    return FeatureAssembler(world, result.dataset).assemble()


class TestCoinFeatures:
    def test_shape_and_names_align(self, world):
        ids = np.arange(5, 15)
        matrix = coin_feature_matrix(world.market, ids, time=5000.0)
        assert matrix.shape == (10, len(COIN_FEATURE_NAMES))
        assert np.isfinite(matrix).all()

    def test_big_coins_have_bigger_caps(self, world):
        matrix = coin_feature_matrix(world.market, np.array([3, world.coins.n_coins - 1]),
                                     time=5000.0)
        cap_col = COIN_FEATURE_NAMES.index("log_market_cap")
        assert matrix[0, cap_col] > matrix[1, cap_col]

    def test_stable_features_unaffected_by_pump(self, world):
        """Stats taken 72h before the pump ignore the accumulation window."""
        event = world.events.events[0]
        ids = np.array([event.coin_id])
        with_pump = coin_feature_matrix(world.market, ids, event.time)
        # A market without overlays gives nearly the same stable features.
        from repro.simulation import MarketSimulator

        clean = MarketSimulator(world.coins)
        without = coin_feature_matrix(clean, ids, event.time)
        np.testing.assert_allclose(with_pump[0, :4], without[0, :4])
        assert abs(with_pump[0, 4] - without[0, 4]) < 0.2


class TestMarketFeatures:
    def test_shape(self, world):
        ids = np.arange(5, 10)
        matrix = market_feature_matrix(world.market, ids, time=4000.0)
        assert matrix.shape == (5, len(MARKET_FEATURE_NAMES))
        assert np.isfinite(matrix).all()

    def test_pumped_coin_shows_precursors(self, world):
        """The pumped coin's 60h return exceeds typical candidates' (A2)."""
        deltas = []
        for event in world.events.events[:20]:
            ids = np.array([event.coin_id, (event.coin_id + 17) % world.coins.n_coins])
            matrix = market_feature_matrix(world.market, ids, event.time)
            col = MARKET_FEATURE_NAMES.index("return_60h")
            deltas.append(matrix[0, col] - matrix[1, col])
        assert np.mean(deltas) > 0.03


class TestSequenceEncoding:
    def _history(self, n):
        return [
            PnDSample(channel_id=1, coin_id=10 + i, exchange_id=0, pair="BTC",
                      time=100.0 * (i + 1))
            for i in range(n)
        ]

    def test_newest_first_layout(self, world):
        seq = encode_history(world.market, self._history(3), length=5)
        assert seq.coin_ids[0] == 12  # most recent pump at position 0
        assert seq.coin_ids[2] == 10
        assert seq.mask.tolist() == [1, 1, 1, 0, 0]

    def test_padding_uses_pad_id(self, world):
        seq = encode_history(world.market, [], length=4)
        assert (seq.coin_ids == pad_coin_id(world.coins.n_coins)).all()
        assert seq.mask.sum() == 0
        assert np.allclose(seq.numeric, 0.0)

    def test_truncates_to_most_recent(self, world):
        seq = encode_history(world.market, self._history(8), length=3)
        assert seq.coin_ids.tolist() == [17, 16, 15]

    def test_invalid_length(self, world):
        with pytest.raises(ValueError):
            encode_history(world.market, [], length=0)


class TestAssembler:
    def test_splits_cover_everything(self, assembled):
        total = len(assembled.train) + len(assembled.validation) + len(assembled.test)
        assert total > 0
        assert len(assembled.train) > len(assembled.test)

    def test_numeric_standardized_on_train(self, assembled):
        means = assembled.train.numeric.mean(axis=0)
        stds = assembled.train.numeric.std(axis=0)
        assert np.abs(means).max() < 1e-6
        assert np.all((stds > 0.5) & (stds < 2.0))

    def test_feature_count_matches_names(self, assembled):
        assert assembled.train.numeric.shape[1] == len(NUMERIC_FEATURE_NAMES)

    def test_sequence_shared_within_list(self, assembled):
        split = assembled.train
        first_list = split.list_id == split.list_id[0]
        seqs = split.seq_coin_idx[first_list]
        assert (seqs == seqs[0]).all()

    def test_pad_rows_are_zero(self, assembled):
        split = assembled.train
        pad_mask = split.seq_mask == 0
        assert np.allclose(split.seq_numeric[pad_mask], 0.0)

    def test_coin_ids_in_vocab(self, assembled):
        for split in (assembled.train, assembled.validation, assembled.test):
            assert split.coin_idx.max() < assembled.n_coin_ids
            assert split.seq_coin_idx.max() < assembled.n_coin_ids

    def test_ranking_lists_have_one_positive(self, assembled):
        split = assembled.test
        scores = np.zeros(len(split))
        lists = split.ranking_lists(scores)
        for arr in lists:
            assert arr[:, 1].sum() == 1
