"""SyntheticWorldSource parity: the adapter changes *nothing*.

``_assemble_direct`` replicates the pre-refactor ``FeatureAssembler``
verbatim — subscribers read straight off the world's channel population,
market queries straight off ``world.market`` — and every array it
produces must match the source-mediated assembler bit for bit.  The same
must hold for rankings and HR@k of all four deep ranker families, whether
the predictor is handed the bare world (coerced) or the explicit adapter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    HR_KS,
    TargetCoinPredictor,
    Trainer,
    evaluate_scores,
    make_model,
    predict_scores,
    snn_config_for,
)
from repro.data import collect
from repro.features import FeatureAssembler
from repro.features.coin import coin_feature_matrix
from repro.features.market_windows import market_feature_matrix
from repro.features.sequence import SEQUENCE_NUMERIC_NAMES, encode_history, pad_coin_id
from repro.ml.scaling import StandardScaler
from repro.simulation import SyntheticWorld
from repro.sources import SyntheticWorldSource
from repro.utils import ReproConfig

RANKER_FAMILIES = ("snn", "dnn", "gru", "tcn")


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld.generate(ReproConfig.tiny())


@pytest.fixture(scope="module")
def collection(world):
    return collect(world)


@pytest.fixture(scope="module")
def source_assembled(world, collection):
    return FeatureAssembler(
        SyntheticWorldSource(world), collection.dataset
    ).assemble()


def _assemble_direct(world, dataset):
    """The pre-refactor assembly path, reading the world directly."""
    examples = dataset.examples
    market = world.market
    subscribers = {
        c.channel_id: c.subscribers for c in world.channels.pump_channels
    }
    channel_ids = sorted({e.channel_id for e in examples})
    channel_index = {cid: i for i, cid in enumerate(channel_ids)}
    seq_len = world.config.sequence_length
    n = len(examples)
    n_numeric = 1 + len(coin_feature_matrix(market, np.array([3]), 100.0)[0]) \
        + len(market_feature_matrix(market, np.array([3]), 100.0)[0])
    channel_idx = np.zeros(n, dtype=np.int64)
    coin_idx = np.zeros(n, dtype=np.int64)
    numeric = np.zeros((n, n_numeric))
    seq_coin_idx = np.zeros((n, seq_len), dtype=np.int64)
    seq_numeric = np.zeros((n, seq_len, len(SEQUENCE_NUMERIC_NAMES)))
    seq_mask = np.zeros((n, seq_len))
    label = np.array([e.label for e in examples], dtype=np.float64)
    list_id = np.array([e.list_id for e in examples], dtype=np.int64)
    split_name = np.array([e.split for e in examples])
    all_coins = np.fromiter((e.coin_id for e in examples), dtype=np.int64,
                            count=n)

    order = np.argsort(list_id, kind="mergesort")
    boundaries = np.flatnonzero(np.diff(list_id[order])) + 1
    starts = np.concatenate(([0], boundaries))
    stops = np.concatenate((boundaries, [n]))
    for start, stop in zip(starts, stops):
        rows = order[start:stop]
        first = examples[rows[0]]
        coins = all_coins[rows]
        channel_feature = np.log(subscribers.get(first.channel_id, 1000) + 1.0)
        block = np.concatenate([
            np.full((len(rows), 1), channel_feature),
            coin_feature_matrix(market, coins, first.time),
            market_feature_matrix(market, coins, first.time),
        ], axis=1)
        history = dataset.history_before(first.channel_id, first.time, seq_len)
        sequence = encode_history(market, history, seq_len)
        channel_idx[rows] = channel_index[first.channel_id]
        coin_idx[rows] = coins
        numeric[rows] = block
        seq_coin_idx[rows] = sequence.coin_ids
        seq_numeric[rows] = sequence.numeric
        seq_mask[rows] = sequence.mask

    train_mask = split_name == "train"
    numeric = StandardScaler().fit(numeric[train_mask]).transform(numeric)
    flat = seq_numeric.reshape(-1, seq_numeric.shape[-1])
    seq_scaler = StandardScaler().fit(
        seq_numeric[train_mask].reshape(-1, seq_numeric.shape[-1])
    )
    seq_numeric = seq_scaler.transform(flat).reshape(seq_numeric.shape)
    seq_numeric *= seq_mask[:, :, None]
    return {
        "channel_idx": channel_idx, "coin_idx": coin_idx, "numeric": numeric,
        "seq_coin_idx": seq_coin_idx, "seq_numeric": seq_numeric,
        "seq_mask": seq_mask, "label": label, "list_id": list_id,
        "split": split_name,
        "n_coin_ids": pad_coin_id(world.coins.n_coins) + 1,
    }


class TestAssembledFeatureParity:
    def test_bit_for_bit_arrays(self, world, collection, source_assembled):
        direct = _assemble_direct(world, collection.dataset)
        for split_name in ("train", "validation", "test"):
            split = source_assembled.split(split_name)
            mask = direct["split"] == split_name
            for field in ("channel_idx", "coin_idx", "numeric",
                          "seq_coin_idx", "seq_numeric", "seq_mask",
                          "label", "list_id"):
                np.testing.assert_array_equal(
                    getattr(split, field), direct[field][mask],
                    err_msg=f"{split_name}.{field} diverged from the "
                            "pre-refactor direct-world path",
                )
        assert source_assembled.n_coin_ids == direct["n_coin_ids"]

    def test_world_coercion_equals_explicit_adapter(self, world, collection,
                                                    source_assembled):
        coerced = FeatureAssembler(world, collection.dataset).assemble()
        for split_name in ("train", "validation", "test"):
            a, b = coerced.split(split_name), source_assembled.split(split_name)
            np.testing.assert_array_equal(a.numeric, b.numeric)
            np.testing.assert_array_equal(a.seq_numeric, b.seq_numeric)


class TestRankerFamilyParity:
    @pytest.mark.parametrize("name", RANKER_FAMILIES)
    def test_rankings_and_hr_identical(self, name, world, collection,
                                       source_assembled):
        model = make_model(name, snn_config_for(source_assembled), seed=0)
        Trainer(epochs=1, seed=0).fit(
            model, source_assembled.train, source_assembled.validation
        )
        scores = predict_scores(model, source_assembled.test)
        hr_source = evaluate_scores(source_assembled.test, scores, HR_KS)

        # The direct path's test split must yield identical scores + HR@k.
        direct = _assemble_direct(world, collection.dataset)
        mask = direct["split"] == "test"
        from repro.features import AssembledSplit

        direct_test = AssembledSplit(
            channel_idx=direct["channel_idx"][mask],
            coin_idx=direct["coin_idx"][mask],
            numeric=direct["numeric"][mask],
            seq_coin_idx=direct["seq_coin_idx"][mask],
            seq_numeric=direct["seq_numeric"][mask],
            seq_mask=direct["seq_mask"][mask],
            label=direct["label"][mask],
            list_id=direct["list_id"][mask],
        )
        direct_scores = predict_scores(model, direct_test)
        np.testing.assert_array_equal(scores, direct_scores)
        assert evaluate_scores(direct_test, direct_scores, HR_KS) == hr_source

        # Predictor parity: bare world (coerced) vs explicit adapter.
        via_world = TargetCoinPredictor(world, collection.dataset, model)
        via_source = TargetCoinPredictor(
            SyntheticWorldSource(world), collection.dataset, model
        )
        example = next(e for e in collection.dataset.examples
                       if e.split == "test" and e.label == 1)
        rank_a = via_world.rank(example.channel_id, 0, example.time)
        rank_b = via_source.rank(example.channel_id, 0, example.time)
        assert [(s.coin_id, s.probability) for s in rank_a.scores] == \
            [(s.coin_id, s.probability) for s in rank_b.scores]
