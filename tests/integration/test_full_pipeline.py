"""Full-stack smoke tests: every stage of Figure 2 wired end to end.

One tiny world flows through collection, features, model training,
analyses and the forecasting extension; cross-stage invariants are checked
at each hop.
"""

import numpy as np
import pytest

from repro.analysis import (
    channel_level_study,
    coin_level_study,
    exchange_distribution,
    semantic_study,
)
from repro.core import (
    Trainer,
    evaluate_scores,
    make_model,
    predict_scores,
    snn_config_for,
)
from repro.data import collect
from repro.features import FeatureAssembler
from repro.forecasting import BTCForecastDataset, make_forecaster, train_forecaster
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig

CFG = ReproConfig.tiny()


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld.generate(CFG)


@pytest.fixture(scope="module")
def collection(world):
    return collect(world)


class TestCrossStageInvariants:
    def test_extracted_coins_exist_in_universe(self, world, collection):
        for sample in collection.samples:
            assert 0 <= sample.coin_id < world.coins.n_coins

    def test_extracted_channels_were_explored(self, collection):
        explored = set(collection.exploration.explored_ids)
        assert {s.channel_id for s in collection.samples} <= explored

    def test_dataset_examples_reference_extracted_samples(self, collection):
        sample_keys = {
            (s.channel_id, s.coin_id) for s in collection.samples
        }
        positives = [e for e in collection.dataset.examples if e.label == 1]
        for example in positives:
            assert (example.channel_id, example.coin_id) in sample_keys

    def test_detected_messages_pass_keyword_filter(self, world, collection):
        from repro.simulation.coins import EXCHANGE_NAMES
        from repro.text import KeywordFilter

        keyword_filter = KeywordFilter(
            world.coins.symbols, EXCHANGE_NAMES[: CFG.n_exchanges]
        )
        for message in collection.detection.detected[:200]:
            assert keyword_filter.matches(message.text)


class TestFullRun:
    def test_pipeline_to_model_to_analysis(self, world, collection):
        assembled = FeatureAssembler(world, collection.dataset).assemble()
        model = make_model("snn", snn_config_for(assembled), seed=0)
        Trainer(epochs=4, seed=0).fit(model, assembled.train,
                                      assembled.validation)
        hr = evaluate_scores(
            assembled.test, predict_scores(model, assembled.test)
        )
        assert hr[30] > 0.2

        coin_study = coin_level_study(world, collection.samples)
        assert 0.0 < coin_study.repump_rate < 1.0
        channels = channel_level_study(world, collection.samples, min_history=3)
        assert channels.n_channels > 2
        shares = exchange_distribution(world)
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        semantics = semantic_study(world, collection.samples, n_pairs=150)
        assert set(semantics.similarities) == {
            "same_channel", "pumped_set", "all_coins"
        }

    def test_forecasting_extension_runs(self, world):
        dataset = BTCForecastDataset.build(world, span=12, seq_len=32,
                                           n_hours=800)
        model = make_forecaster("snn", 32, dataset.train.sequences.shape[2],
                                seed=0)
        result = train_forecaster(model, dataset, epochs=2, seed=0)
        assert np.isfinite(result.mae)

    def test_world_determinism_through_pipeline(self):
        first = collect(SyntheticWorld.generate(CFG))
        second = collect(SyntheticWorld.generate(CFG))
        assert [
            (s.channel_id, s.coin_id, s.time) for s in first.samples
        ] == [
            (s.channel_id, s.coin_id, s.time) for s in second.samples
        ]
