"""End-to-end exactness of the compiled inference path.

The acceptance bar for :mod:`repro.nn.compile` is stronger than numerical
closeness: on a real trained model over real assembled features, compiled
scoring must reproduce the eager path's scores, ranking order and HR@k
metrics bit-for-bit, through both ``predict_scores`` and the deployed
``TargetCoinPredictor.rank`` API.
"""

import numpy as np
import pytest

from repro.core import (
    TargetCoinPredictor,
    Trainer,
    evaluate_scores,
    make_model,
    predict_scores,
    snn_config_for,
)
from repro.data import collect
from repro.features import FeatureAssembler
from repro.nn import get_compiled
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig


@pytest.fixture(scope="module")
def pipeline():
    world = SyntheticWorld.generate(ReproConfig.tiny())
    collection = collect(world)
    assembler = FeatureAssembler(world, collection.dataset)
    assembled = assembler.assemble()
    model = make_model("snn", snn_config_for(assembled), seed=0)
    Trainer(epochs=3, seed=0).fit(model, assembled.train, assembled.validation)
    return world, collection, assembler, assembled, model


def test_predict_scores_compiled_equals_eager_bitwise(pipeline):
    _, _, _, assembled, model = pipeline
    compiled = predict_scores(model, assembled.test)
    eager = predict_scores(model, assembled.test, use_compiled=False)
    assert np.array_equal(compiled, eager)


def test_hr_metrics_and_ranking_order_identical(pipeline):
    _, _, _, assembled, model = pipeline
    compiled = predict_scores(model, assembled.test)
    eager = predict_scores(model, assembled.test, use_compiled=False)
    assert evaluate_scores(assembled.test, compiled) == \
        evaluate_scores(assembled.test, eager)
    # Same ranking order inside every candidate list, not just same HR@k.
    for list_id in np.unique(assembled.test.list_id):
        rows = assembled.test.list_id == list_id
        assert np.array_equal(
            np.argsort(-compiled[rows], kind="stable"),
            np.argsort(-eager[rows], kind="stable"),
        )


def test_predictor_rank_uses_shared_plan_and_matches_eager(pipeline):
    world, collection, assembler, _, model = pipeline
    predictor = TargetCoinPredictor(world, collection.dataset, model,
                                    assembler=assembler)
    event = next(
        e for e in collection.dataset.examples
        if e.label == 1 and e.split == "test"
    )
    compiled_ranking = predictor.rank(event.channel_id, 0, event.time)
    # The plan is memoized per model instance: evaluation, the predictor and
    # the serving layer all trace it exactly once.
    plan = get_compiled(model)
    assert plan is not None
    assert get_compiled(model) is plan

    # Force the eager fallback and compare scores coin by coin.
    from repro.nn import compile as nn_compile

    nn_compile._PLAN_CACHE[model] = None
    try:
        eager_ranking = predictor.rank(event.channel_id, 0, event.time)
    finally:
        del nn_compile._PLAN_CACHE[model]
    assert [s.coin_id for s in compiled_ranking.scores] == \
        [s.coin_id for s in eager_ranking.scores]
    assert [s.probability for s in compiled_ranking.scores] == \
        [s.probability for s in eager_ranking.scores]
