"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_world_defaults(self):
        args = build_parser().parse_args(["world"])
        assert args.scale == "tiny"
        assert args.seed == 7

    def test_train_model_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "transformer"])

    def test_forecast_span_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["forecast", "--span", "7"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.bucket_hours == 1.0
        assert args.no_cache is False
        assert args.max_batch == 64


class TestCommands:
    def test_world_command(self, capsys):
        assert main(["world", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "events" in out
        assert "synthetic world" in out

    def test_train_command_saves_weights(self, tmp_path, capsys):
        path = tmp_path / "dnn.npz"
        code = main([
            "train", "--scale", "tiny", "--model", "dnn", "--epochs", "1",
            "--save", str(path),
        ])
        assert code == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "HR@10" in out

    def test_serve_command_streams_alerts(self, tmp_path, capsys):
        path = tmp_path / "alerts.jsonl"
        code = main([
            "serve", "--scale", "tiny", "--model", "dnn", "--epochs", "1",
            "--jsonl", str(path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving metrics" in out
        assert "cache_hit_rate" in out
        assert path.exists()
        assert path.read_text().count("\n") >= 1
