"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_world_defaults(self):
        args = build_parser().parse_args(["world"])
        assert args.scale == "tiny"
        assert args.seed == 7

    def test_train_model_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "transformer"])

    def test_forecast_span_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["forecast", "--span", "7"])


class TestCommands:
    def test_world_command(self, capsys):
        assert main(["world", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "events" in out
        assert "synthetic world" in out

    def test_train_command_saves_weights(self, tmp_path, capsys):
        path = tmp_path / "dnn.npz"
        code = main([
            "train", "--scale", "tiny", "--model", "dnn", "--epochs", "1",
            "--save", str(path),
        ])
        assert code == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "HR@10" in out
