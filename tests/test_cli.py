"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_world_defaults(self):
        args = build_parser().parse_args(["world"])
        assert args.scale == "tiny"
        assert args.seed == 7

    def test_train_model_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "transformer"])

    def test_forecast_span_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["forecast", "--span", "7"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.bucket_hours == 1.0
        assert args.no_cache is False
        assert args.max_batch == 64
        assert args.load == ""

    def test_models_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["models"])

    def test_serve_gateway_default_is_local(self):
        assert build_parser().parse_args(["serve"]).gateway == ""

    def test_gateway_defaults(self):
        args = build_parser().parse_args(["gateway", "--load", "snn"])
        assert args.host == "127.0.0.1"
        assert args.port == 8787
        assert args.max_batch == 256
        assert args.registry == "models"
        assert args.no_cache is False

    def test_gateway_requires_load(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["gateway"])

    def test_models_json_flags(self):
        args = build_parser().parse_args(["models", "list", "--json"])
        assert args.json is True
        args = build_parser().parse_args(["models", "inspect", "x", "--json"])
        assert args.json is True


class TestGatewayCommand:
    """Fast-fail paths of `repro gateway` / `repro serve --gateway`
    (the live HTTP loop is covered by tests/gateway and the CI smoke)."""

    def test_rejects_bad_max_batch(self, tmp_path, capsys):
        code = main(["gateway", "--load", str(tmp_path / "art"),
                     "--max-batch", "0"])
        assert code == 2
        assert "--max-batch" in capsys.readouterr().err

    def test_rejects_bad_port(self, tmp_path, capsys):
        code = main(["gateway", "--load", str(tmp_path / "art"),
                     "--port", "99999"])
        assert code == 2
        assert "--port" in capsys.readouterr().err

    def test_rejects_missing_artifact(self, tmp_path, capsys):
        code = main(["gateway", "--load", str(tmp_path / "nope"),
                     "--registry", str(tmp_path / "reg")])
        assert code == 2
        assert "cannot load" in capsys.readouterr().err

    def test_serve_unreachable_gateway_exits_cleanly(self, capsys):
        code = main(["serve", "--scale", "tiny",
                     "--gateway", "http://127.0.0.1:9"])
        assert code == 2
        assert "cannot reach gateway" in capsys.readouterr().err

    def test_serve_bad_gateway_url(self, capsys):
        code = main(["serve", "--scale", "tiny",
                     "--gateway", "ftp://example.com"])
        assert code == 2
        assert "bad --gateway URL" in capsys.readouterr().err


class TestCommands:
    def test_world_command(self, capsys):
        assert main(["world", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "events" in out
        assert "synthetic world" in out

    def test_train_command_saves_artifact(self, tmp_path, capsys):
        path = tmp_path / "dnn-artifact"
        code = main([
            "train", "--scale", "tiny", "--model", "dnn", "--epochs", "1",
            "--save", str(path),
        ])
        assert code == 0
        assert (path / "manifest.json").exists()
        assert (path / "weights.npz").exists()
        assert (path / "state.npz").exists()
        out = capsys.readouterr().out
        assert "HR@10" in out
        assert "artifact saved" in out

    def test_serve_command_streams_alerts(self, tmp_path, capsys):
        path = tmp_path / "alerts.jsonl"
        code = main([
            "serve", "--scale", "tiny", "--model", "dnn", "--epochs", "1",
            "--jsonl", str(path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving metrics" in out
        assert "cache_hit_rate" in out
        assert path.exists()
        assert path.read_text().count("\n") >= 1


class TestModelLifecycle:
    """train --register → models list/inspect/validate → serve --load."""

    @pytest.fixture(scope="class")
    def registry_root(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("registry")
        code = main([
            "train", "--scale", "tiny", "--model", "dnn", "--epochs", "1",
            "--save", str(root.parent / "exported"),
            "--register", "dnn", "--registry", str(root),
        ])
        assert code == 0
        return root

    def test_saved_and_registered_copies_identical(self, registry_root):
        # --save + --register snapshot once: the registered bundle is a
        # verified byte-for-byte copy of the saved directory.
        exported = registry_root.parent / "exported"
        registered = registry_root / "dnn" / "v0001"
        for name in ("manifest.json", "weights.npz", "state.npz"):
            assert (exported / name).read_bytes() == \
                (registered / name).read_bytes()

    def test_models_list(self, registry_root, capsys):
        assert main(["models", "--registry", str(registry_root), "list"]) == 0
        out = capsys.readouterr().out
        assert "dnn" in out
        assert "v0001" in out

    def test_models_inspect(self, registry_root, capsys):
        code = main([
            "models", "--registry", str(registry_root), "inspect", "dnn",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "schema_version" in out
        assert "provenance.scale" in out

    def test_models_validate_clean(self, registry_root, capsys):
        code = main([
            "models", "--registry", str(registry_root), "validate",
        ])
        assert code == 0
        assert "no problems" in capsys.readouterr().out

    def test_models_list_json(self, registry_root, capsys):
        import json

        code = main([
            "models", "--registry", str(registry_root), "list", "--json",
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        # The exact serializer GET /v1/models uses — no drift possible.
        from repro.registry import ModelRegistry, registry_payload

        assert document == json.loads(json.dumps(
            registry_payload(ModelRegistry(registry_root))
        ))
        [entry] = document["models"]
        assert entry["name"] == "dnn"
        assert entry["version"] == "v0001"
        assert entry["latest"] is True
        assert entry["model"] == "dnn"
        assert entry["provenance"]["scale"] == "tiny"

    def test_models_inspect_json(self, registry_root, capsys):
        import json

        code = main([
            "models", "--registry", str(registry_root),
            "inspect", "dnn", "--json",
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["model"] == "dnn"
        assert document["artifact_schema_version"] >= 1
        assert document["n_parameters"] > 0
        # Structured provenance is passed through, not flattened.
        assert document["provenance"]["data_source"]["backend"] == "synthetic"

    def test_serve_from_artifact_without_training(self, registry_root,
                                                  capsys):
        code = main([
            "serve", "--scale", "tiny", "--load", "dnn",
            "--registry", str(registry_root),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving from artifact" in out
        assert "serving metrics" in out

    def test_models_validate_detects_tampering(self, registry_root, capsys):
        weights = registry_root / "dnn" / "v0001" / "weights.npz"
        pristine = weights.read_bytes()
        blob = bytearray(pristine)
        blob[12] ^= 0xFF
        try:
            weights.write_bytes(bytes(blob))
            code = main([
                "models", "--registry", str(registry_root), "validate",
            ])
        finally:
            weights.write_bytes(pristine)  # class-scoped fixture: restore
        assert code == 1
        assert "checksum mismatch" in capsys.readouterr().err

    def test_serve_rejects_tampered_artifact(self, registry_root, capsys):
        weights = registry_root / "dnn" / "v0001" / "weights.npz"
        pristine = weights.read_bytes()
        blob = bytearray(pristine)
        blob[13] ^= 0xFF
        try:
            weights.write_bytes(bytes(blob))
            code = main([
                "serve", "--scale", "tiny", "--load", "dnn",
                "--registry", str(registry_root),
            ])
        finally:
            weights.write_bytes(pristine)
        assert code == 2
        assert "checksum mismatch" in capsys.readouterr().err

    def test_bare_ref_prefers_registry_over_cwd(self, registry_root,
                                                tmp_path, monkeypatch,
                                                capsys):
        # A stray ./dnn directory must not shadow the registered model.
        (tmp_path / "dnn").mkdir()
        monkeypatch.chdir(tmp_path)
        code = main([
            "models", "--registry", str(registry_root), "inspect", "dnn",
        ])
        assert code == 0
        assert str(registry_root) in capsys.readouterr().out

    def test_broken_registry_entry_not_shadowed_by_cwd(self, registry_root,
                                                       tmp_path, monkeypatch,
                                                       capsys):
        # A registered-but-broken entry must report its real error, not
        # silently fall back to a same-named local directory.
        manifest = registry_root / "dnn" / "v0001" / "manifest.json"
        pristine = manifest.read_text()
        (tmp_path / "dnn").mkdir()
        monkeypatch.chdir(tmp_path)
        try:
            manifest.unlink()
            code = main([
                "models", "--registry", str(registry_root), "inspect", "dnn",
            ])
        finally:
            manifest.write_text(pristine)
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_models_validate_bad_ref_exits_cleanly(self, registry_root,
                                                   capsys):
        code = main([
            "models", "--registry", str(registry_root), "validate",
            "./not/a/name",
        ])
        assert code == 2
        assert "invalid model name" in capsys.readouterr().err

    def test_models_list_survives_corrupt_manifest(self, registry_root,
                                                   capsys):
        manifest = registry_root / "dnn" / "v0001" / "manifest.json"
        pristine = manifest.read_text()
        try:
            manifest.write_text("{ not json")
            code = main(["models", "--registry", str(registry_root), "list"])
        finally:
            manifest.write_text(pristine)
        assert code == 0
        captured = capsys.readouterr()
        assert "(unreadable)" in captured.out
        assert "validate" in captured.err

    def test_models_list_survives_malformed_provenance(self, registry_root,
                                                       capsys):
        import json

        manifest = registry_root / "dnn" / "v0001" / "manifest.json"
        pristine = manifest.read_text()
        doc = json.loads(pristine)
        doc["provenance"] = {"hr": 0.71}  # hr as a number, not a dict
        try:
            manifest.write_text(json.dumps(doc))
            code = main(["models", "--registry", str(registry_root), "list"])
        finally:
            manifest.write_text(pristine)
        assert code == 0
        assert "dnn" in capsys.readouterr().out

    def test_models_list_survives_manifestless_version_dir(self,
                                                           registry_root,
                                                           capsys):
        ghost = registry_root / "dnn" / "v0099"
        ghost.mkdir()
        try:
            code = main(["models", "--registry", str(registry_root), "list"])
        finally:
            ghost.rmdir()
        assert code == 0
        captured = capsys.readouterr()
        assert "(unreadable)" in captured.out
        assert "v0001" in captured.out  # the healthy version still lists


class TestServeValidation:
    def test_top_k_must_be_positive(self, capsys):
        assert main(["serve", "--top-k", "0"]) == 2
        assert "--top-k" in capsys.readouterr().err

    def test_max_batch_must_be_positive(self, capsys):
        assert main(["serve", "--max-batch", "0"]) == 2
        assert "--max-batch" in capsys.readouterr().err

    def test_missing_load_path_exits_cleanly(self, capsys):
        assert main(["serve", "--load", "/does/not/exist"]) == 2
        err = capsys.readouterr().err
        assert "cannot load" in err

    def test_load_with_model_flag_warns_ignored(self, capsys):
        code = main(["serve", "--load", "/does/not/exist", "--model", "dnn"])
        assert code == 2
        assert "ignored with --load" in capsys.readouterr().err

    def test_train_register_bad_name_fails_before_training(self, capsys):
        # Rejected up front — no world generation, no training run.
        code = main(["train", "--register", "bad/name"])
        assert code == 2
        assert "invalid model name" in capsys.readouterr().err

    def test_train_save_onto_file_fails_before_training(self, tmp_path,
                                                        capsys):
        legacy = tmp_path / "weights.npz"
        legacy.write_bytes(b"old format")
        code = main(["train", "--save", str(legacy)])
        assert code == 2
        assert "existing file" in capsys.readouterr().err

    def test_train_save_onto_unrelated_dir_fails_before_training(
            self, tmp_path, capsys):
        target = tmp_path / "notes"
        target.mkdir()
        (target / "todo.txt").write_text("keep me")
        code = main(["train", "--save", str(target)])
        assert code == 2
        assert "not a predictor artifact" in capsys.readouterr().err
        assert (target / "todo.txt").read_text() == "keep me"

    def test_train_registry_file_fails_before_training(self, tmp_path,
                                                       capsys):
        not_a_dir = tmp_path / "registry"
        not_a_dir.write_bytes(b"file")
        code = main([
            "train", "--register", "snn", "--registry", str(not_a_dir),
        ])
        assert code == 2
        assert "existing file" in capsys.readouterr().err

    def test_models_validate_missing_registry_errors(self, capsys):
        code = main(["models", "--registry", "/typo/registry", "validate"])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_models_list_missing_registry_errors(self, capsys):
        code = main(["models", "--registry", "/typo/registry", "list"])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_models_validate_empty_registry_says_so(self, tmp_path, capsys):
        code = main(["models", "--registry", str(tmp_path), "validate"])
        assert code == 0
        assert "no models registered" in capsys.readouterr().out


class TestSourceFlag:
    def test_parser_defaults_to_synthetic(self):
        args = build_parser().parse_args(["train"])
        assert args.source == "synthetic"
        args = build_parser().parse_args(["serve"])
        assert args.source == "synthetic"

    def test_unknown_source_spec_exits_cleanly(self, capsys):
        assert main(["train", "--source", "postgres://x", "--epochs", "1"]) == 2
        assert "unknown source spec" in capsys.readouterr().err

    def test_missing_dump_exits_cleanly(self, capsys):
        assert main(["serve", "--source", "file:/nonexistent-dump"]) == 2
        assert "not a dump directory" in capsys.readouterr().err


class TestIngestCommand:
    def test_requires_an_input_mode(self, capsys):
        assert main(["ingest", "--out", "x"]) == 2
        assert "nothing to ingest" in capsys.readouterr().err

    def test_modes_are_exclusive(self, capsys, tmp_path):
        assert main(["ingest", "--out", str(tmp_path / "d"),
                     "--from-synthetic", "--messages", "m.jsonl"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_raw_mode_requires_all_three_inputs(self, capsys, tmp_path):
        assert main(["ingest", "--out", str(tmp_path / "d"),
                     "--messages", "m.jsonl"]) == 2
        assert "--candles" in capsys.readouterr().err


class TestFileSourceRoundtrip:
    """ingest → train --source file → registry → serve --source file."""

    @pytest.fixture(scope="class")
    def dump(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("cli-dump") / "dump"
        code = main(["ingest", "--scale", "tiny", "--seed", "7",
                     "--horizon", "2600", "--from-synthetic",
                     "--out", str(out)])
        assert code == 0
        return out

    def test_ingest_reports_fingerprint(self, dump, capsys):
        assert (dump / "meta.json").is_file()
        assert (dump / "candles.csv").is_file()

    def test_train_register_serve_from_file(self, dump, tmp_path_factory,
                                            capsys):
        registry = tmp_path_factory.mktemp("cli-registry")
        code = main(["train", "--source", f"file:{dump}", "--model", "dnn",
                     "--epochs", "1", "--register", "dnn",
                     "--registry", str(registry)])
        assert code == 0
        out = capsys.readouterr().out
        assert "registered dnn@v0001" in out

        code = main(["serve", "--source", f"file:{dump}", "--load", "dnn",
                     "--registry", str(registry), "--top-k", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving from artifact" in out
        assert "alerts:" in out

        code = main(["models", "--registry", str(registry), "inspect", "dnn"])
        assert code == 0
        out = capsys.readouterr().out
        assert "provenance.data_source.backend" in out
        assert "file" in out
        assert "provenance.data_source.fingerprint" in out


class TestDataPlaneErrorHandling:
    """SourceDataError raised mid-pipeline must exit 2, not traceback."""

    @pytest.fixture()
    def gappy_dump(self, tmp_path):
        import shutil

        code = main(["ingest", "--scale", "tiny", "--seed", "7",
                     "--horizon", "2600", "--from-synthetic",
                     "--out", str(tmp_path / "full")])
        assert code == 0
        clone = tmp_path / "gappy"
        shutil.copytree(tmp_path / "full", clone)
        lines = (clone / "candles.csv").read_text().splitlines()
        (clone / "candles.csv").write_text("\n".join(lines[:11]) + "\n")
        return clone

    def test_train_on_gappy_dump_exits_cleanly(self, gappy_dump, capsys):
        assert main(["train", "--source", f"file:{gappy_dump}",
                     "--epochs", "1"]) == 2
        err = capsys.readouterr().err
        assert "repro train:" in err
        assert "candle" in err

    def test_serve_on_gappy_dump_exits_cleanly(self, gappy_dump, capsys):
        assert main(["serve", "--source", f"file:{gappy_dump}",
                     "--epochs", "1"]) == 2
        err = capsys.readouterr().err
        assert "repro serve:" in err

    def test_file_trained_artifact_omits_scale_provenance(self, tmp_path,
                                                          capsys):
        code = main(["ingest", "--scale", "tiny", "--seed", "7",
                     "--horizon", "2600", "--from-synthetic",
                     "--out", str(tmp_path / "d")])
        assert code == 0
        code = main(["train", "--source", f"file:{tmp_path / 'd'}",
                     "--model", "dnn", "--epochs", "1",
                     "--save", str(tmp_path / "art")])
        assert code == 0
        capsys.readouterr()
        assert main(["models", "inspect", str(tmp_path / "art")]) == 0
        out = capsys.readouterr().out
        assert "provenance.scale" not in out
        assert "provenance.data_source.backend" in out
