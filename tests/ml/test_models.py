"""Tests for LogisticRegression, DecisionTree and RandomForest."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeClassifier,
    LogisticRegression,
    RandomForestClassifier,
    roc_auc,
)


def make_blobs(rng, n=400, sep=3.0):
    """Two gaussian blobs; returns (x, y)."""
    half = n // 2
    x0 = rng.normal(size=(half, 4))
    x1 = rng.normal(size=(n - half, 4)) + sep
    x = np.vstack([x0, x1])
    y = np.concatenate([np.zeros(half), np.ones(n - half)])
    perm = rng.permutation(n)
    return x[perm], y[perm]


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestLogisticRegression:
    def test_separates_blobs(self, rng):
        x, y = make_blobs(rng)
        model = LogisticRegression(epochs=300).fit(x, y)
        assert roc_auc(y, model.predict_proba(x)) > 0.99

    def test_probabilities_are_valid(self, rng):
        x, y = make_blobs(rng)
        p = LogisticRegression(epochs=100).fit(x, y).predict_proba(x)
        assert ((p >= 0) & (p <= 1)).all()

    def test_balanced_mode_improves_minority_recall(self, rng):
        x, y = make_blobs(rng, n=400, sep=1.2)
        # Make it heavily imbalanced by dropping most positives.
        keep = (y == 0) | (rng.random(len(y)) < 0.08)
        x, y = x[keep], y[keep]
        plain = LogisticRegression(epochs=200).fit(x, y)
        balanced = LogisticRegression(epochs=200, class_weight="balanced").fit(x, y)
        recall = lambda m: ((m.predict(x) == 1) & (y == 1)).sum() / max(1, (y == 1).sum())
        assert recall(balanced) >= recall(plain)

    def test_rejects_nonbinary_labels(self, rng):
        with pytest.raises(ValueError):
            LogisticRegression().fit(rng.normal(size=(4, 2)), [0, 1, 2, 1])

    def test_unfitted_predict_raises(self, rng):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict_proba(rng.normal(size=(2, 2)))

    def test_works_on_sparse_input(self, rng):
        from scipy import sparse

        x, y = make_blobs(rng)
        xs = sparse.csr_matrix(x)
        model = LogisticRegression(epochs=200).fit(xs, y)
        assert roc_auc(y, model.predict_proba(xs)) > 0.99


class TestDecisionTree:
    def test_fits_axis_aligned_split(self, rng):
        x = rng.uniform(size=(300, 3))
        y = (x[:, 1] > 0.6).astype(float)
        tree = DecisionTreeClassifier(max_depth=3).fit(x, y)
        assert (tree.predict(x) == y).mean() > 0.98

    def test_respects_max_depth(self, rng):
        x, y = make_blobs(rng, sep=0.5)
        tree = DecisionTreeClassifier(max_depth=2).fit(x, y)
        assert tree.depth() <= 2

    def test_pure_node_becomes_leaf(self):
        x = np.array([[0.0], [1.0], [2.0]])
        tree = DecisionTreeClassifier().fit(x, np.zeros(3))
        assert tree.depth() == 0

    def test_constant_features_become_leaf(self):
        x = np.ones((10, 3))
        y = np.array([0, 1] * 5, dtype=float)
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.depth() == 0
        assert np.allclose(tree.predict_proba(x), 0.5)

    def test_probabilities_reflect_leaf_composition(self, rng):
        x = rng.uniform(size=(200, 1))
        y = (rng.random(200) < np.clip(x[:, 0], 0, 1)).astype(float)
        tree = DecisionTreeClassifier(max_depth=2).fit(x, y)
        probs = tree.predict_proba(x)
        assert probs[x[:, 0] > 0.8].mean() > probs[x[:, 0] < 0.2].mean()

    def test_min_samples_leaf_respected(self, rng):
        x, y = make_blobs(rng, n=50, sep=0.3)
        tree = DecisionTreeClassifier(max_depth=10, min_samples_leaf=10).fit(x, y)
        # Route all training rows; every leaf must hold >= 10 of them.
        counts = {}
        for row in x:
            node = tree._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            counts[id(node)] = counts.get(id(node), 0) + 1
        assert min(counts.values()) >= 10


class TestRandomForest:
    def test_beats_single_tree_on_noisy_data(self, rng):
        x, y = make_blobs(rng, n=600, sep=1.0)
        x_noisy = x + rng.normal(scale=1.0, size=x.shape)
        split = 400
        tree = DecisionTreeClassifier(max_depth=8).fit(x_noisy[:split], y[:split])
        forest = RandomForestClassifier(n_estimators=25, max_depth=8, seed=1).fit(
            x_noisy[:split], y[:split]
        )
        auc_tree = roc_auc(y[split:], tree.predict_proba(x_noisy[split:]))
        auc_forest = roc_auc(y[split:], forest.predict_proba(x_noisy[split:]))
        assert auc_forest >= auc_tree - 0.01

    def test_deterministic_given_seed(self, rng):
        x, y = make_blobs(rng)
        f1 = RandomForestClassifier(n_estimators=5, seed=42).fit(x, y)
        f2 = RandomForestClassifier(n_estimators=5, seed=42).fit(x, y)
        assert np.allclose(f1.predict_proba(x), f2.predict_proba(x))

    def test_feature_importances_sum_to_one(self, rng):
        x, y = make_blobs(rng)
        forest = RandomForestClassifier(n_estimators=5, seed=0).fit(x, y)
        importances = forest.feature_importances()
        assert importances.shape == (4,)
        assert importances.sum() == pytest.approx(1.0)

    def test_max_samples_caps_bootstrap(self, rng):
        x, y = make_blobs(rng, n=200)
        forest = RandomForestClassifier(n_estimators=3, max_samples=50, seed=0)
        forest.fit(x, y)
        assert len(forest.trees_) == 3

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict_proba(rng.normal(size=(2, 2)))
