"""Tests for TF-IDF, mean encoding and scalers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import MeanEncoder, MinMaxScaler, StandardScaler, TfidfVectorizer


class TestTfidf:
    def test_hand_computed_values(self):
        docs = ["pump pump soon", "hold the coin", "pump target binance"]
        vec = TfidfVectorizer()
        matrix = vec.fit_transform(docs).toarray()
        vocab = vec.vocabulary_
        # 'pump' appears in 2 of 3 docs, 'hold' in 1 of 3.
        idf_pump = np.log(4 / 3) + 1
        idf_hold = np.log(4 / 2) + 1
        assert vec.idf_[vocab["pump"]] == pytest.approx(idf_pump)
        assert vec.idf_[vocab["hold"]] == pytest.approx(idf_hold)
        # Row 0: tf(pump)=2, tf(soon)=1, L2-normalized.
        idf_soon = np.log(4 / 2) + 1
        raw = np.zeros(len(vocab))
        raw[vocab["pump"]] = 2 * idf_pump
        raw[vocab["soon"]] = 1 * idf_soon
        assert np.allclose(matrix[0], raw / np.linalg.norm(raw))

    def test_rows_are_unit_norm(self):
        docs = ["a b c", "b c d", "a a a a"]
        matrix = TfidfVectorizer().fit_transform(docs)
        norms = np.sqrt(matrix.multiply(matrix).sum(axis=1)).A.ravel()
        assert np.allclose(norms, 1.0)

    def test_empty_document_row_is_zero(self):
        vec = TfidfVectorizer().fit(["a b", "c"])
        matrix = vec.transform(["", "a"]).toarray()
        assert np.allclose(matrix[0], 0.0)
        assert matrix[1].sum() > 0

    def test_max_features_keeps_most_frequent(self):
        docs = ["a b", "a c", "a d"]
        vec = TfidfVectorizer(max_features=1).fit(docs)
        assert list(vec.vocabulary_) == ["a"]

    def test_min_df_drops_rare_terms(self):
        docs = ["a b", "a c", "a b"]
        vec = TfidfVectorizer(min_df=2).fit(docs)
        assert "c" not in vec.vocabulary_
        assert {"a", "b"} == set(vec.vocabulary_)

    def test_unseen_terms_ignored_at_transform(self):
        vec = TfidfVectorizer().fit(["a b"])
        matrix = vec.transform(["z z z a"]).toarray()
        assert matrix.shape == (1, 2)
        assert matrix[0].sum() > 0

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            TfidfVectorizer().fit([])

    def test_feature_names_align_with_columns(self):
        vec = TfidfVectorizer().fit(["b a", "b c"])
        names = vec.get_feature_names()
        assert names[vec.vocabulary_["b"]] == "b"


class TestMeanEncoder:
    def test_unsmoothed_recovers_category_means(self):
        cats = np.array([1, 1, 2, 2])
        y = np.array([1.0, 1.0, 0.0, 1.0])
        enc = MeanEncoder(alpha=0.0).fit(cats, y)
        out = enc.transform([1, 2])
        assert out[0] == pytest.approx(1.0)
        assert out[1] == pytest.approx(0.5)

    def test_smoothing_pulls_toward_prior(self):
        cats = np.array([1, 2, 2, 2, 2])
        y = np.array([1.0, 0.0, 0.0, 0.0, 0.0])
        enc = MeanEncoder(alpha=5.0).fit(cats, y)
        prior = 0.2
        # Category 1 has a single positive; smoothing pulls it toward 0.2.
        assert prior < enc.transform([1])[0] < 1.0

    def test_unseen_category_gets_prior(self):
        enc = MeanEncoder().fit([1, 2], [1.0, 0.0])
        assert enc.transform([99])[0] == pytest.approx(0.5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MeanEncoder().fit([1, 2], [1.0])

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5_000))
    def test_property_encodings_bounded_by_label_range(self, seed):
        rng = np.random.default_rng(seed)
        cats = rng.integers(0, 5, size=50)
        y = (rng.random(50) > 0.5).astype(float)
        enc = MeanEncoder(alpha=3.0).fit(cats, y)
        out = enc.transform(cats)
        assert (out >= 0).all() and (out <= 1).all()


class TestScalers:
    def test_standard_scaler_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        x = rng.normal(loc=5, scale=3, size=(100, 4))
        z = StandardScaler().fit_transform(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-12)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-12)

    def test_standard_scaler_roundtrip(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(x)
        assert np.allclose(scaler.inverse_transform(scaler.transform(x)), x)

    def test_constant_column_passthrough(self):
        x = np.ones((10, 2))
        z = StandardScaler().fit_transform(x)
        assert np.isfinite(z).all()

    def test_minmax_range(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(50, 3)) * 10
        z = MinMaxScaler().fit_transform(x)
        assert z.min() >= 0.0 and z.max() <= 1.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.ones((2, 2)))
