"""Tests for metrics: identities, edge cases and property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    accuracy,
    classification_report,
    hit_ratio_at_k,
    mean_absolute_error,
    roc_auc,
)


class TestRocAuc:
    def test_perfect_ranking_is_one(self):
        assert roc_auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_ranking_is_zero(self):
        assert roc_auc([1, 1, 0, 0], [0.1, 0.2, 0.8, 0.9]) == 0.0

    def test_constant_scores_give_half(self):
        assert roc_auc([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_ties_get_average_rank(self):
        # One tied pair across classes contributes 0.5.
        auc = roc_auc([0, 1], [0.7, 0.7])
        assert auc == pytest.approx(0.5)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_auc([1, 1], [0.3, 0.4])

    def test_nonbinary_labels_raise(self):
        with pytest.raises(ValueError):
            roc_auc([0, 2], [0.3, 0.4])

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           n=st.integers(min_value=4, max_value=50))
    def test_property_auc_invariant_to_monotone_transform(self, seed, n):
        rng = np.random.default_rng(seed)
        y = np.zeros(n, dtype=int)
        y[rng.choice(n, size=max(1, n // 3), replace=False)] = 1
        if y.sum() == 0 or y.sum() == n:
            return
        scores = rng.normal(size=n)
        a1 = roc_auc(y, scores)
        a2 = roc_auc(y, np.exp(scores) * 3 + 5)  # strictly monotone map
        assert a1 == pytest.approx(a2)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_flipping_scores_complements_auc(self, seed):
        rng = np.random.default_rng(seed)
        y = np.array([0] * 10 + [1] * 5)
        scores = rng.normal(size=15)
        assert roc_auc(y, scores) + roc_auc(y, -scores) == pytest.approx(1.0)


class TestClassificationReport:
    def test_counts_and_scores(self):
        y = np.array([1, 1, 0, 0, 1, 0])
        scores = np.array([0.9, 0.4, 0.6, 0.1, 0.8, 0.2])
        report = classification_report(y, scores, threshold=0.5)
        assert report.true_positives == 2
        assert report.false_positives == 1
        assert report.false_negatives == 1
        assert report.true_negatives == 2
        assert report.precision == pytest.approx(2 / 3)
        assert report.recall == pytest.approx(2 / 3)
        assert report.f1 == pytest.approx(2 / 3)

    def test_low_threshold_boosts_recall(self):
        y = np.array([1, 1, 0, 0, 1, 0])
        scores = np.array([0.9, 0.25, 0.6, 0.1, 0.8, 0.22])
        high = classification_report(y, scores, threshold=0.5)
        low = classification_report(y, scores, threshold=0.2)
        assert low.recall >= high.recall

    def test_degenerate_predictions_dont_crash(self):
        y = np.array([1, 0])
        report = classification_report(y, np.array([0.0, 0.0]), threshold=0.5)
        assert report.precision == 0.0
        assert report.recall == 0.0
        assert report.f1 == 0.0


class TestHitRatio:
    def _lists(self):
        # Event 1: positive ranked 1st; event 2: positive ranked 3rd.
        first = np.array([[0.9, 1], [0.5, 0], [0.1, 0], [0.05, 0]])
        second = np.array([[0.4, 1], [0.9, 0], [0.6, 0], [0.1, 0]])
        return [first, second]

    def test_basic_hit_ratios(self):
        hr = hit_ratio_at_k(self._lists(), ks=[1, 3])
        assert hr[1] == pytest.approx(0.5)
        assert hr[3] == pytest.approx(1.0)

    def test_monotone_in_k(self):
        hr = hit_ratio_at_k(self._lists(), ks=[1, 2, 3, 4])
        values = [hr[k] for k in sorted(hr)]
        assert values == sorted(values)

    def test_tied_scores_are_pessimistic(self):
        lists = [np.array([[0.5, 1], [0.5, 0]])]
        hr = hit_ratio_at_k(lists, ks=[1, 2])
        assert hr[1] == 0.0  # ties never help the positive
        assert hr[2] == 1.0

    def test_requires_a_positive(self):
        with pytest.raises(ValueError):
            hit_ratio_at_k([np.array([[0.5, 0]])], ks=[1])

    def test_requires_lists(self):
        with pytest.raises(ValueError):
            hit_ratio_at_k([], ks=[1])

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           n=st.integers(min_value=2, max_value=40))
    def test_property_hr_at_list_size_is_one(self, seed, n):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=n)
        labels = np.zeros(n)
        labels[rng.integers(n)] = 1
        hr = hit_ratio_at_k([np.stack([scores, labels], axis=1)], ks=[n])
        assert hr[n] == 1.0


class TestRegressionMetrics:
    def test_mae(self):
        assert mean_absolute_error([1, 2, 3], [2, 2, 5]) == pytest.approx(1.0)

    def test_mae_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_absolute_error([1, 2], [1])

    def test_accuracy(self):
        assert accuracy([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)
