"""Tests for the extended ranking metrics (MRR, mean rank, NDCG@k)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.ranking import (
    mean_rank,
    mean_reciprocal_rank,
    ndcg_at_k,
    ranking_report,
)


def make_list(rank: int, size: int = 10) -> np.ndarray:
    """A (score, label) list whose positive lands at the given rank."""
    scores = np.linspace(1.0, 0.0, size)
    labels = np.zeros(size)
    labels[rank - 1] = 1
    return np.stack([scores, labels], axis=1)


class TestMRR:
    def test_rank_one_gives_one(self):
        assert mean_reciprocal_rank([make_list(1)]) == 1.0

    def test_rank_four_gives_quarter(self):
        assert mean_reciprocal_rank([make_list(4)]) == pytest.approx(0.25)

    def test_averaging(self):
        mrr = mean_reciprocal_rank([make_list(1), make_list(2)])
        assert mrr == pytest.approx(0.75)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_reciprocal_rank([])


class TestMeanRankAndNdcg:
    def test_mean_rank(self):
        assert mean_rank([make_list(3), make_list(5)]) == 4.0

    def test_ndcg_perfect(self):
        assert ndcg_at_k([make_list(1)], k=5) == 1.0

    def test_ndcg_outside_k_is_zero(self):
        assert ndcg_at_k([make_list(7)], k=5) == 0.0

    def test_ndcg_discount(self):
        value = ndcg_at_k([make_list(2)], k=5)
        assert value == pytest.approx(1.0 / np.log2(3))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ndcg_at_k([make_list(1)], k=0)

    def test_report_bundle(self):
        report = ranking_report([make_list(2)], ks=(1, 5))
        assert set(report) == {"mrr", "mean_rank", "ndcg@1", "ndcg@5"}

    def test_list_without_positive_rejected(self):
        bad = np.array([[0.5, 0.0], [0.2, 0.0]])
        with pytest.raises(ValueError):
            mean_rank([bad])


@settings(max_examples=30, deadline=None)
@given(rank=st.integers(min_value=1, max_value=20),
       size=st.integers(min_value=20, max_value=40))
def test_property_metric_consistency(rank, size):
    """MRR = 1/mean_rank for a single list; NDCG@size is always positive."""
    lists = [make_list(rank, size)]
    assert mean_reciprocal_rank(lists) == pytest.approx(1.0 / mean_rank(lists))
    assert ndcg_at_k(lists, k=size) > 0
