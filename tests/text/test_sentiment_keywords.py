"""Tests for the sentiment analyzer and the keyword filter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import KeywordFilter, SentimentAnalyzer


@pytest.fixture(scope="module")
def analyzer():
    return SentimentAnalyzer()


class TestSentimentPolarity:
    def test_positive_message(self, analyzer):
        assert analyzer.score("huge profit, easy gains, bullish!").compound > 0.3

    def test_negative_message(self, analyzer):
        assert analyzer.score("total scam, panic selling, crash").compound < -0.3

    def test_neutral_message(self, analyzer):
        scores = analyzer.score("the meeting starts at noon")
        assert scores.compound == 0.0
        assert scores.neu == 1.0

    def test_negation_flips_polarity(self, analyzer):
        positive = analyzer.score("this coin is good").compound
        negated = analyzer.score("this coin is not good").compound
        assert positive > 0
        assert negated < 0

    def test_booster_amplifies(self, analyzer):
        plain = analyzer.score("good coin").compound
        boosted = analyzer.score("extremely good coin").compound
        assert boosted > plain

    def test_dampener_reduces(self, analyzer):
        plain = analyzer.score("good coin").compound
        damped = analyzer.score("slightly good coin").compound
        assert damped < plain

    def test_exclamations_amplify(self, analyzer):
        plain = analyzer.score("pump it, moon").compound
        excited = analyzer.score("pump it, moon!!!").compound
        assert excited > plain

    def test_caps_amplify(self, analyzer):
        plain = analyzer.score("this is a moon day").compound
        caps = analyzer.score("this is a MOON day").compound
        assert caps > plain

    def test_crypto_slang_coverage(self, analyzer):
        assert analyzer.score("rekt by the rug pull").compound < 0
        assert analyzer.score("to the moon, lambo time").compound > 0

    def test_empty_text(self, analyzer):
        scores = analyzer.score("")
        assert scores.compound == 0.0

    @settings(max_examples=40, deadline=None)
    @given(st.text(max_size=300))
    def test_property_compound_bounded(self, analyzer, text):
        scores = analyzer.score(text)
        assert -1.0 <= scores.compound <= 1.0
        assert abs(scores.neg + scores.neu + scores.pos - 1.0) < 0.01 or (
            scores.neg == scores.pos == 0.0
        )


class TestKeywordFilter:
    @pytest.fixture
    def filt(self):
        return KeywordFilter(
            coin_symbols=["BTC", "EVX", "NAS"],
            exchange_names=["binance", "yobit"],
        )

    def test_matches_pump_vocabulary(self, filt):
        assert filt.matches("Next pump in 5 minutes!")
        assert filt.matches("HOLD and do not sell")

    def test_matches_uppercase_symbol_release(self, filt):
        assert filt.matches("EVX")
        assert filt.matches("The coin is NAS")

    def test_matches_dollar_tag_case_insensitive(self, filt):
        assert filt.matches("loading up on $evx")

    def test_lowercase_symbol_without_tag_not_coin_match(self, filt):
        # 'evx' lowercase, no $ tag, no keywords: must not match.
        assert not filt.matches("evx is a word here")

    def test_matches_exchange_name(self, filt):
        assert filt.matches("listed on Binance today")

    def test_rejects_ordinary_chatter(self, filt):
        assert not filt.matches("lunch was nice today")

    def test_filter_returns_indices(self, filt):
        messages = ["hello world", "pump now", "weather is fine", "on yobit"]
        assert filt.filter(messages) == [1, 3]

    def test_requires_symbols(self):
        with pytest.raises(ValueError):
            KeywordFilter([], ["binance"])
