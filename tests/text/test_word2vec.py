"""Tests for the word2vec implementation (SkipGram and CBoW)."""

import numpy as np
import pytest

from repro.text import Vocabulary, Word2Vec, cosine_similarity_matrix


def synthetic_corpus(seed=0, n=900):
    """Two topic clusters: coins {aaa,bbb,ccc} and {xxx,yyy,zzz}.

    Words inside a cluster co-occur; across clusters they never do, so any
    sane embedding places same-cluster words closer together.
    """
    rng = np.random.default_rng(seed)
    cluster_a = ["aaa", "bbb", "ccc", "alpha", "beta"]
    cluster_b = ["xxx", "yyy", "zzz", "gamma", "delta"]
    corpus = []
    for _ in range(n):
        cluster = cluster_a if rng.random() < 0.5 else cluster_b
        corpus.append(list(rng.choice(cluster, size=6)))
    return corpus


class TestVocabulary:
    def test_min_count_filters(self):
        vocab = Vocabulary([["a", "a", "b"]], min_count=2)
        assert "a" in vocab and "b" not in vocab

    def test_encode_drops_oov(self):
        vocab = Vocabulary([["a", "a", "b", "b"]], min_count=2)
        ids = vocab.encode(["a", "zzz", "b"])
        assert len(ids) == 2

    def test_unigram_table_is_distribution(self):
        vocab = Vocabulary([["a", "a", "a", "b", "b", "c"]], min_count=1)
        table = vocab.unigram_table()
        assert table.sum() == pytest.approx(1.0)
        # Power < 1 flattens the distribution but preserves order.
        assert table[vocab.index["a"]] > table[vocab.index["c"]]

    def test_invalid_min_count(self):
        with pytest.raises(ValueError):
            Vocabulary([["a"]], min_count=0)


class TestWord2Vec:
    @pytest.mark.parametrize("mode", ["skipgram", "cbow"])
    def test_clusters_separate(self, mode):
        model = Word2Vec(synthetic_corpus(), dim=16, mode=mode, epochs=3, seed=1)
        same = model.similarity("aaa", "bbb")
        cross = model.similarity("aaa", "xxx")
        assert same > cross

    def test_most_similar_prefers_same_cluster(self):
        model = Word2Vec(synthetic_corpus(), dim=16, epochs=3, seed=1)
        neighbours = [w for w, _ in model.most_similar("aaa", k=3)]
        overlap = set(neighbours) & {"bbb", "ccc", "alpha", "beta"}
        assert len(overlap) >= 2

    def test_deterministic_under_seed(self):
        corpus = synthetic_corpus(n=100)
        m1 = Word2Vec(corpus, dim=8, epochs=1, seed=5)
        m2 = Word2Vec(corpus, dim=8, epochs=1, seed=5)
        assert np.allclose(m1.w_in, m2.w_in)

    def test_unknown_token_raises(self):
        model = Word2Vec(synthetic_corpus(n=50), dim=8, epochs=1)
        with pytest.raises(KeyError):
            model.vector("missing")

    def test_vectors_for_uses_default_for_oov(self):
        model = Word2Vec(synthetic_corpus(n=50), dim=8, epochs=1)
        out = model.vectors_for(["aaa", "missing"])
        assert out.shape == (2, 8)
        assert np.allclose(out[1], 0.0)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            Word2Vec([["a", "b"]], mode="glove", min_count=1)

    def test_empty_vocab_rejected(self):
        with pytest.raises(ValueError):
            Word2Vec([["a"]], min_count=5)


class TestCosineMatrix:
    def test_diagonal_is_one(self):
        rng = np.random.default_rng(0)
        vecs = rng.normal(size=(5, 8))
        sims = cosine_similarity_matrix(vecs)
        assert np.allclose(np.diag(sims), 1.0)

    def test_symmetric_and_bounded(self):
        rng = np.random.default_rng(0)
        sims = cosine_similarity_matrix(rng.normal(size=(6, 4)))
        assert np.allclose(sims, sims.T)
        assert (sims <= 1.0 + 1e-9).all() and (sims >= -1.0 - 1e-9).all()
