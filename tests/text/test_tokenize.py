"""Tests for message cleaning and tokenization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import STOPWORDS, clean_message, strip_non_ascii, strip_urls, tokenize


class TestCleaning:
    def test_strips_urls(self):
        assert "http" not in strip_urls("join https://t.me/pumpchan now")
        assert "t.me" not in strip_urls("invite t.me/abc123")

    def test_strips_non_ascii(self):
        assert strip_non_ascii("pump 🚀🚀 now") == "pump   now"

    def test_clean_lowercases_and_removes_punct(self):
        assert clean_message("PUMP!!! Soon... (ready?)") == "pump soon ready"

    def test_clean_keeps_dollar_tags(self):
        assert "$btc" in clean_message("Buy $BTC now!")

    def test_tokenize_removes_stopwords(self):
        tokens = tokenize("the coin is ready to pump")
        assert "the" not in tokens
        assert "pump" in tokens
        assert "coin" in tokens

    def test_tokenize_keeps_stopwords_when_asked(self):
        tokens = tokenize("the coin", remove_stopwords=False)
        assert "the" in tokens

    def test_empty_message(self):
        assert tokenize("") == []
        assert tokenize("!!! ???") == []

    def test_docstring_example(self):
        assert tokenize("PUMP the $BTC now!!! https://t.me/chan") == ["pump", "$btc"]


@settings(max_examples=50, deadline=None)
@given(st.text(max_size=200))
def test_property_tokenize_never_raises_and_is_clean(text):
    tokens = tokenize(text)
    for token in tokens:
        assert token == token.lower()
        assert token not in STOPWORDS
        assert " " not in token


@settings(max_examples=30, deadline=None)
@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=100))
def test_property_clean_is_idempotent(text):
    once = clean_message(text)
    assert clean_message(once) == once
