"""Incremental detection and sessionization."""

import numpy as np
import pytest

from repro.data import SESSION_GAP_HOURS, sessionize
from repro.serving import OnlineDetector, OnlineSessionizer, ServiceStats
from repro.simulation.messages import Message
from repro.text import KeywordFilter

SYMBOLS = ["BTC", "ETH", "ABC", "XYZ"]
EXCHANGES = ["Binance", "Bittrex", "Yobit"]


def _msg(message_id, channel_id, time, text="pump soon"):
    return Message(message_id, channel_id, float(time), text, "countdown")


def _sessionizer(**kwargs):
    return OnlineSessionizer(SYMBOLS, EXCHANGES, **kwargs)


class TestOnlineSessionizer:
    def test_gap_of_exactly_24h_stays_open(self):
        sessionizer = _sessionizer()
        assert sessionizer.add(_msg(0, 1, 0.0))[0] is None
        closed, _ = sessionizer.add(_msg(1, 1, SESSION_GAP_HOURS))
        assert closed is None
        assert len(sessionizer.open_session(1).messages) == 2

    def test_gap_above_24h_closes(self):
        sessionizer = _sessionizer()
        sessionizer.add(_msg(0, 1, 0.0))
        closed, _ = sessionizer.add(_msg(1, 1, SESSION_GAP_HOURS + 0.001))
        assert closed is not None
        assert [m.message_id for m in closed.messages] == [0]
        assert [m.message_id for m in sessionizer.open_session(1).messages] == [1]

    def test_channels_are_independent(self):
        sessionizer = _sessionizer()
        sessionizer.add(_msg(0, 1, 0.0))
        sessionizer.add(_msg(1, 2, 20.0))
        # 30h after channel 2's last message but 50h after channel 1's: only
        # channel 1's session closes when its own next message arrives.
        closed, _ = sessionizer.add(_msg(2, 2, 50.0))
        assert closed is not None and closed.channel_id == 2
        assert sessionizer.open_session(1) is not None

    def test_matches_offline_sessionize(self):
        rng = np.random.default_rng(3)
        messages = []
        time = 0.0
        for i in range(400):
            time += float(rng.exponential(9.0))
            messages.append(_msg(i, int(rng.integers(0, 4)), time))
        sessionizer = _sessionizer()
        online = []
        for message in messages:
            closed, _ = sessionizer.add(message)
            if closed is not None:
                online.append(closed)
        online.extend(sessionizer.flush())
        offline = sessionize(messages)
        key = lambda s: (s.channel_id, s.start)
        online.sort(key=key)
        offline.sort(key=key)
        assert len(online) == len(offline)
        for ours, theirs in zip(online, offline):
            assert ours.channel_id == theirs.channel_id
            assert [m.message_id for m in ours.messages] == \
                [m.message_id for m in theirs.messages]

    def test_announcement_carries_parsed_exchange_and_pair(self):
        sessionizer = _sessionizer()
        sessionizer.add(_msg(0, 7, 0.0, "Next pump on Bittrex soon! Pair: ETH"))
        _, announcement = sessionizer.add(_msg(1, 7, 1.0, "Coin: ABC"))
        assert announcement is not None
        assert announcement.channel_id == 7
        assert announcement.coin_id == SYMBOLS.index("ABC")
        assert announcement.exchange_id == EXCHANGES.index("Bittrex")
        assert announcement.pair == "ETH"
        assert announcement.time == 1.0

    def test_defaults_to_binance_btc(self):
        _, announcement = _sessionizer().add(_msg(0, 7, 5.0, "XYZ"))
        assert announcement is not None
        assert (announcement.exchange_id, announcement.pair) == (0, "BTC")

    def test_new_session_resets_parsed_state(self):
        sessionizer = _sessionizer()
        sessionizer.add(_msg(0, 7, 0.0, "Next pump on Yobit! Pair: ETH"))
        # Far later message opens a fresh session: back to the defaults.
        _, announcement = sessionizer.add(_msg(1, 7, 100.0, "ABC"))
        assert (announcement.exchange_id, announcement.pair) == (0, "BTC")

    def test_non_release_yields_no_announcement(self):
        _, announcement = _sessionizer().add(_msg(0, 7, 0.0, "pump in 3 hours"))
        assert announcement is None

    def test_release_repost_does_not_reannounce(self):
        from repro.serving import ServiceStats

        stats = ServiceStats()
        sessionizer = _sessionizer(stats=stats)
        _, first = sessionizer.add(_msg(0, 7, 0.0, "Coin: ABC"))
        _, repost = sessionizer.add(_msg(1, 7, 0.5, "ABC"))
        assert first is not None
        assert repost is None
        assert (stats.announcements, stats.duplicate_releases) == (1, 1)
        # A fresh session announces again.
        _, later = sessionizer.add(_msg(2, 7, 100.0, "ABC"))
        assert later is not None

    def test_rejects_nonpositive_gap(self):
        with pytest.raises(ValueError):
            _sessionizer(gap_hours=0.0)


class _ConstantDetector:
    """predict_proba stub returning a fixed probability."""

    def __init__(self, probability):
        self.probability = probability
        self.calls = 0

    def predict_proba(self, texts):
        self.calls += 1
        return np.full(len(texts), self.probability)


class TestOnlineDetector:
    def _filter(self):
        return KeywordFilter(SYMBOLS, EXCHANGES)

    def test_keyword_filter_gates_classifier(self):
        model = _ConstantDetector(0.9)
        detector = OnlineDetector(self._filter(), model)
        assert not detector.is_pump(_msg(0, 1, 0.0, "nice weather we have"))
        assert model.calls == 0
        assert detector.is_pump(_msg(1, 1, 0.0, "huge pump incoming"))
        assert model.calls == 1

    def test_threshold(self):
        detector = OnlineDetector(self._filter(), _ConstantDetector(0.15),
                                  threshold=0.2)
        assert not detector.is_pump(_msg(0, 1, 0.0, "huge pump incoming"))

    def test_stats_count_flagged(self):
        stats = ServiceStats()
        detector = OnlineDetector(self._filter(), _ConstantDetector(0.9),
                                  stats=stats)
        detector.is_pump(_msg(0, 1, 0.0, "huge pump incoming"))
        detector.is_pump(_msg(1, 1, 0.0, "no keywords here at all"))
        assert stats.pump_messages == 1

    def test_matches_offline_detection(self, tiny_collection):
        """Per-message online classification equals the offline batch run."""
        detection = tiny_collection.detection
        detector = OnlineDetector.from_detection(detection)
        detected_ids = {m.message_id for m in detection.detected}
        explored = detection.n_total
        assert explored > 0
        # A slice is enough: each message's probability is independent.
        sample = detection.detected[:40]
        for message in sample:
            assert detector.is_pump(message), message.text
        assert all(m.message_id in detected_ids for m in sample)

    def test_from_detection_requires_artefacts(self, tiny_collection):
        import dataclasses

        stripped = dataclasses.replace(
            tiny_collection.detection, detectors={}, keyword_filter=None
        )
        with pytest.raises(ValueError, match="artefacts"):
            OnlineDetector.from_detection(stripped)
