"""End-to-end stream replay on a tiny world (the acceptance scenario)."""

import numpy as np
import pytest

from repro.serving import CollectingSink, ServiceStats, replay_test_period


@pytest.fixture(scope="module")
def replay(tiny_world, tiny_collection, tiny_predictor):
    sink = CollectingSink()
    result = replay_test_period(
        tiny_world, tiny_collection, tiny_predictor, sinks=(sink,),
        bucket_hours=0.0,  # exact feature times: directly comparable reruns
    )
    return result, sink


class TestReplayTestPeriod:
    def test_emits_one_alert_per_known_announcement(self, replay):
        result, sink = replay
        stats = result.stats
        assert stats.announcements > 0
        assert len(result.alerts) == \
            stats.announcements - stats.unknown_channels
        assert stats.alerts == len(result.alerts)
        assert sink.alerts == result.alerts

    def test_alerts_cover_dataset_test_positives(self, replay,
                                                 tiny_collection):
        result, _ = replay
        served = {(a.announcement.channel_id, round(a.announcement.time, 6))
                  for a in result.alerts}
        positives = [
            e for e in tiny_collection.dataset.examples
            if e.label == 1 and e.split == "test"
        ]
        covered = [
            e for e in positives
            if (e.channel_id, round(e.time, 6)) in served
        ]
        assert len(covered) >= len(positives) // 2

    def test_feature_cache_hit_rate_nonzero(self, replay):
        result, _ = replay
        assert result.stats.cache_hit_rate() > 0.0

    def test_rankings_are_sorted_and_complete(self, replay, tiny_predictor):
        result, _ = replay
        for alert in result.alerts:
            probs = [s.probability for s in alert.ranking.scores]
            assert probs == sorted(probs, reverse=True)
            expected = tiny_predictor.candidates(
                alert.announcement.exchange_id, alert.announcement.time
            )
            assert len(probs) == len(expected)

    def test_replay_is_deterministic_with_or_without_cache(
            self, tiny_world, tiny_collection, tiny_predictor, replay):
        """Caching must not change a single emitted probability."""
        baseline, _ = replay
        rerun = replay_test_period(
            tiny_world, tiny_collection, tiny_predictor,
            bucket_hours=0.0, cache_entries=0,
        )
        assert rerun.stats.cache_hits == 0
        assert len(rerun.alerts) == len(baseline.alerts)
        for ours, theirs in zip(rerun.alerts, baseline.alerts):
            assert ours.announcement == theirs.announcement
            np.testing.assert_allclose(
                [s.probability for s in ours.ranking.scores],
                [s.probability for s in theirs.ranking.scores],
                atol=1e-8,
            )

    def test_stats_summary_shape(self, replay):
        result, _ = replay
        summary = result.stats.summary()
        assert summary["messages"] > 0
        assert summary["throughput_msg_per_s"] > 0
        assert summary["latency_p99_ms"] >= summary["latency_p50_ms"] > 0
        assert 0.0 < summary["cache_hit_rate"] <= 1.0

    def test_micro_batching_happened(self, replay):
        """Coordinated same-instant releases must share forward passes."""
        result, _ = replay
        assert result.stats.forward_passes < result.stats.alerts


class TestServiceStatsUnit:
    def test_percentiles_empty(self):
        stats = ServiceStats()
        assert stats.latency_ms(99) == 0.0
        assert stats.throughput() == 0.0
        assert stats.cache_hit_rate() == 0.0

    def test_mean_batch_size(self):
        stats = ServiceStats()
        stats.forward_passes = 2
        stats.alerts = 5
        assert stats.mean_batch_size() == 2.5


class _AlwaysPumpDetector:
    """Stub: every message is a pump message."""

    def is_pump(self, message):
        return True


class _OneShotSessionizer:
    """Stub: every message immediately becomes its own announcement."""

    def add(self, message):
        from repro.serving.online import Announcement

        return None, Announcement(
            channel_id=message.channel_id, coin_id=0, exchange_id=0,
            pair="BTC", time=message.time,
        )

    def flush(self):
        return []


class _BatchRecordingService:
    """Stub: records the size of every micro-batch it is asked to score."""

    def __init__(self):
        self.batch_sizes = []

    def knows_channel(self, channel_id):
        return True

    def has_candidates(self, announcement):
        return True

    def rank_batch(self, announcements):
        self.batch_sizes.append(len(announcements))
        return []


class TestTimeEpsilonBoundary:
    """Regression: the micro-batching boundary is *strictly greater than*
    ``_TIME_EPSILON`` — two announcements exactly epsilon apart share one
    forward pass; just beyond it they must not.
    """

    @staticmethod
    def _run(times):
        from repro.serving.engine import StreamEngine
        from repro.serving.stream import MessageStream
        from repro.types import Message

        service = _BatchRecordingService()
        engine = StreamEngine(
            _AlwaysPumpDetector(), _OneShotSessionizer(), service,
        )
        messages = [
            Message(message_id=i, channel_id=100 + i, time=t,
                    text="Coin: XYZ", kind="release")
            for i, t in enumerate(times)
        ]
        engine.run(MessageStream.replay(messages))
        return service.batch_sizes

    def test_exactly_epsilon_apart_share_a_batch(self):
        from repro.serving.engine import _TIME_EPSILON

        base = 100.0
        assert self._run([base, base + _TIME_EPSILON]) == [2]

    def test_just_beyond_epsilon_splits_the_batch(self):
        from repro.serving.engine import _TIME_EPSILON

        base = 100.0
        assert self._run([base, base + 2.5 * _TIME_EPSILON]) == [1, 1]

    def test_chain_of_epsilon_steps_batches_from_the_last_arrival(self):
        """The boundary compares against the *latest* pending announcement,
        so a chain of epsilon-spaced arrivals keeps extending one batch."""
        from repro.serving.engine import _TIME_EPSILON

        base = 100.0
        times = [base, base + _TIME_EPSILON, base + 2 * _TIME_EPSILON]
        assert self._run(times) == [3]
