"""End-to-end stream replay on a tiny world (the acceptance scenario)."""

import numpy as np
import pytest

from repro.serving import CollectingSink, ServiceStats, replay_test_period


@pytest.fixture(scope="module")
def replay(tiny_world, tiny_collection, tiny_predictor):
    sink = CollectingSink()
    result = replay_test_period(
        tiny_world, tiny_collection, tiny_predictor, sinks=(sink,),
        bucket_hours=0.0,  # exact feature times: directly comparable reruns
    )
    return result, sink


class TestReplayTestPeriod:
    def test_emits_one_alert_per_known_announcement(self, replay):
        result, sink = replay
        stats = result.stats
        assert stats.announcements > 0
        assert len(result.alerts) == \
            stats.announcements - stats.unknown_channels
        assert stats.alerts == len(result.alerts)
        assert sink.alerts == result.alerts

    def test_alerts_cover_dataset_test_positives(self, replay,
                                                 tiny_collection):
        result, _ = replay
        served = {(a.announcement.channel_id, round(a.announcement.time, 6))
                  for a in result.alerts}
        positives = [
            e for e in tiny_collection.dataset.examples
            if e.label == 1 and e.split == "test"
        ]
        covered = [
            e for e in positives
            if (e.channel_id, round(e.time, 6)) in served
        ]
        assert len(covered) >= len(positives) // 2

    def test_feature_cache_hit_rate_nonzero(self, replay):
        result, _ = replay
        assert result.stats.cache_hit_rate() > 0.0

    def test_rankings_are_sorted_and_complete(self, replay, tiny_predictor):
        result, _ = replay
        for alert in result.alerts:
            probs = [s.probability for s in alert.ranking.scores]
            assert probs == sorted(probs, reverse=True)
            expected = tiny_predictor.candidates(
                alert.announcement.exchange_id, alert.announcement.time
            )
            assert len(probs) == len(expected)

    def test_replay_is_deterministic_with_or_without_cache(
            self, tiny_world, tiny_collection, tiny_predictor, replay):
        """Caching must not change a single emitted probability."""
        baseline, _ = replay
        rerun = replay_test_period(
            tiny_world, tiny_collection, tiny_predictor,
            bucket_hours=0.0, cache_entries=0,
        )
        assert rerun.stats.cache_hits == 0
        assert len(rerun.alerts) == len(baseline.alerts)
        for ours, theirs in zip(rerun.alerts, baseline.alerts):
            assert ours.announcement == theirs.announcement
            np.testing.assert_allclose(
                [s.probability for s in ours.ranking.scores],
                [s.probability for s in theirs.ranking.scores],
                atol=1e-8,
            )

    def test_stats_summary_shape(self, replay):
        result, _ = replay
        summary = result.stats.summary()
        assert summary["messages"] > 0
        assert summary["throughput_msg_per_s"] > 0
        assert summary["latency_p99_ms"] >= summary["latency_p50_ms"] > 0
        assert 0.0 < summary["cache_hit_rate"] <= 1.0

    def test_micro_batching_happened(self, replay):
        """Coordinated same-instant releases must share forward passes."""
        result, _ = replay
        assert result.stats.forward_passes < result.stats.alerts


class TestServiceStatsUnit:
    def test_percentiles_empty(self):
        stats = ServiceStats()
        assert stats.latency_ms(99) == 0.0
        assert stats.throughput() == 0.0
        assert stats.cache_hit_rate() == 0.0

    def test_mean_batch_size(self):
        stats = ServiceStats()
        stats.forward_passes = 2
        stats.alerts = 5
        assert stats.mean_batch_size() == 2.5
