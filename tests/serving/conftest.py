"""Shared fixtures for the serving tests.

One tiny world, its collection and a briefly trained model are built once
per session; every serving test reuses them.
"""

from __future__ import annotations

import pytest

from repro.core import train_predictor
from repro.data import collect
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig


@pytest.fixture(scope="session")
def tiny_world():
    return SyntheticWorld.generate(ReproConfig.tiny())


@pytest.fixture(scope="session")
def tiny_collection(tiny_world):
    return collect(tiny_world)


@pytest.fixture(scope="session")
def tiny_predictor(tiny_world, tiny_collection):
    return train_predictor(tiny_world, tiny_collection, epochs=2, seed=0)
