"""Batched ranking and the prediction service's caches."""

import numpy as np
import pytest

from repro.core import RankRequest
from repro.serving import Announcement, PredictionService, ServiceStats


@pytest.fixture(scope="module")
def test_positives(tiny_collection):
    positives = [
        e for e in tiny_collection.dataset.examples
        if e.label == 1 and e.split == "test"
    ]
    assert len(positives) >= 3
    return positives


def _announcements(positives, n):
    return [
        Announcement(channel_id=e.channel_id, coin_id=e.coin_id,
                     exchange_id=0, pair="BTC", time=e.time)
        for e in positives[:n]
    ]


def _probabilities(ranking):
    ordered = sorted(ranking.scores, key=lambda s: s.coin_id)
    return np.array([s.probability for s in ordered])


class TestRankMany:
    def test_batched_scores_match_unbatched_rank(self, tiny_predictor,
                                                 test_positives):
        requests = [
            RankRequest(e.channel_id, 0, e.time) for e in test_positives[:3]
        ]
        batched = tiny_predictor.rank_many(requests)
        for request, ranking in zip(requests, batched):
            single = tiny_predictor.rank(
                request.channel_id, request.exchange_id, request.pump_time
            )
            np.testing.assert_allclose(
                _probabilities(ranking), _probabilities(single), atol=1e-8
            )
            assert [s.coin_id for s in ranking.scores] == \
                [s.coin_id for s in single.scores]

    def test_empty_request_list(self, tiny_predictor):
        assert tiny_predictor.rank_many([]) == []

    def test_unknown_channel_raises(self, tiny_predictor, test_positives):
        with pytest.raises(KeyError, match="unseen"):
            tiny_predictor.rank_many(
                [RankRequest(-12345, 0, test_positives[0].time)]
            )


class TestPredictionService:
    def test_identical_scores_with_and_without_cache(self, tiny_predictor,
                                                     test_positives):
        announcements = _announcements(test_positives, 3)
        cached = PredictionService(tiny_predictor, bucket_hours=1.0,
                                   cache_entries=512)
        uncached = PredictionService(tiny_predictor, bucket_hours=1.0,
                                     cache_entries=0)
        # Serve each announcement twice so the cached service actually hits.
        for service in (cached, uncached):
            service.rank_batch(announcements)
        alerts_cached = cached.rank_batch(announcements)
        alerts_uncached = uncached.rank_batch(announcements)
        for ours, theirs in zip(alerts_cached, alerts_uncached):
            np.testing.assert_allclose(
                _probabilities(ours.ranking), _probabilities(theirs.ranking),
                atol=1e-8,
            )
        assert cached.stats.cache_hits > 0
        assert uncached.stats.cache_hits == 0
        assert uncached.stats.cache_misses > 0

    def test_hit_and_miss_counts(self, tiny_predictor, test_positives):
        stats = ServiceStats()
        service = PredictionService(tiny_predictor, bucket_hours=1.0,
                                    stats=stats)
        announcement = _announcements(test_positives, 1)[0]
        service.rank_one(announcement)
        assert (stats.cache_hits, stats.cache_misses) == (0, 1)
        service.rank_one(announcement)
        assert (stats.cache_hits, stats.cache_misses) == (1, 1)

    def test_observe_extends_history_strictly_before(self, tiny_predictor,
                                                     test_positives):
        service = PredictionService(tiny_predictor)
        announcement = _announcements(test_positives, 1)[0]
        before = len(service.history(announcement.channel_id))
        service.rank_one(announcement)
        history = service.history(announcement.channel_id)
        assert len(history) == before + 1
        assert history[-1].time == announcement.time
        # The announcement never sees itself in its own sequence features.
        past = service._history_before(
            announcement.channel_id, announcement.time
        )
        assert all(s.time < announcement.time for s in past)

    def test_history_seeded_up_to_cutoff_only(self, tiny_predictor):
        cutoff = tiny_predictor.dataset.split_hours[1]
        service = PredictionService(tiny_predictor)
        assert service.history_cutoff == cutoff
        for channel_id in list(tiny_predictor.dataset.history)[:5]:
            assert all(s.time < cutoff for s in service.history(channel_id))

    def test_has_candidates_guard(self, tiny_predictor, test_positives,
                                  monkeypatch):
        announcement = _announcements(test_positives, 1)[0]
        service = PredictionService(tiny_predictor)
        assert service.has_candidates(announcement)
        fresh = PredictionService(tiny_predictor)
        monkeypatch.setattr(
            tiny_predictor, "candidates",
            lambda exchange_id, pump_time: np.array([], dtype=np.int64),
        )
        assert not fresh.has_candidates(announcement)
        # The earlier lookup is memoized: one resolution per announcement.
        assert service.has_candidates(announcement)

    def test_micro_batch_is_one_forward_pass(self, tiny_predictor,
                                             test_positives):
        stats = ServiceStats()
        service = PredictionService(tiny_predictor, stats=stats)
        alerts = service.rank_batch(_announcements(test_positives, 3))
        assert len(alerts) == 3
        assert stats.forward_passes == 1
        assert stats.alerts == 3
        assert stats.scored_rows == sum(len(a.ranking.scores) for a in alerts)
        assert all(a.latency_ms > 0 for a in alerts)


class TestEmptyInputs:
    """Regressions (ISSUE 5): empty batches and empty candidate sets must
    produce empty results without ever invoking the model."""

    def test_rank_batch_empty_list(self, tiny_predictor):
        stats = ServiceStats()
        service = PredictionService(tiny_predictor, stats=stats)
        assert service.rank_batch([]) == []
        assert stats.forward_passes == 0
        assert stats.alerts == 0

    def test_rank_many_zero_candidates_returns_empty_ranking(
            self, tiny_predictor, test_positives):
        example = test_positives[0]
        request = RankRequest(example.channel_id, 0, example.time,
                              candidates=np.array([], dtype=np.int64))
        [ranking] = tiny_predictor.rank_many([request])
        assert ranking.scores == []
        assert ranking.channel_id == example.channel_id
        assert ranking.rank_of(example.coin_id) == -1

    def test_rank_many_mixed_empty_and_scored(self, tiny_predictor,
                                              test_positives):
        examples = test_positives[:2]
        requests = [
            RankRequest(examples[0].channel_id, 0, examples[0].time,
                        candidates=np.array([], dtype=np.int64)),
            RankRequest(examples[1].channel_id, 0, examples[1].time),
        ]
        empty, scored = tiny_predictor.rank_many(requests)
        assert empty.scores == []
        solo = tiny_predictor.rank(examples[1].channel_id, 0,
                                   examples[1].time)
        assert [(s.coin_id, s.probability) for s in scored.scores] == \
            [(s.coin_id, s.probability) for s in solo.scores]

    def test_zero_candidate_batch_never_hits_the_model(self, tiny_predictor,
                                                       test_positives,
                                                       monkeypatch):
        stats = ServiceStats()
        service = PredictionService(tiny_predictor, stats=stats)
        monkeypatch.setattr(
            tiny_predictor, "candidates",
            lambda exchange_id, pump_time: np.array([], dtype=np.int64),
        )

        def exploding_forward(*args, **kwargs):
            raise AssertionError("model must not run for empty candidates")

        monkeypatch.setattr(tiny_predictor.model, "__call__",
                            exploding_forward, raising=False)
        [alert] = service.rank_batch(_announcements(test_positives, 1))
        assert alert.ranking.scores == []
        assert stats.forward_passes == 0
        assert stats.scored_rows == 0


class TestObserveSentinel:
    def test_observe_ignores_unknown_coin(self, tiny_predictor,
                                          test_positives):
        service = PredictionService(tiny_predictor)
        base = _announcements(test_positives, 1)[0]
        sentinel = Announcement(channel_id=base.channel_id, coin_id=-1,
                                exchange_id=0, pair="BTC", time=base.time)
        before = len(service.history(base.channel_id))
        service.observe(sentinel)
        assert len(service.history(base.channel_id)) == before
        service.observe(base)
        assert len(service.history(base.channel_id)) == before + 1


class TestHistorySnapshot:
    def test_snapshot_round_trip_is_deep_enough(self, tiny_predictor,
                                                test_positives):
        service = PredictionService(tiny_predictor)
        other = PredictionService(tiny_predictor)
        announcement = _announcements(test_positives, 1)[0]
        service.observe(announcement)
        snapshot = service.history_snapshot()
        other.restore_history(snapshot)
        assert other.history(announcement.channel_id) == \
            service.history(announcement.channel_id)
        # Mutating one side afterwards must not leak into the other.
        service.observe(Announcement(
            channel_id=announcement.channel_id, coin_id=announcement.coin_id,
            exchange_id=0, pair="BTC", time=announcement.time + 1.0,
        ))
        assert len(other.history(announcement.channel_id)) == \
            len(service.history(announcement.channel_id)) - 1
