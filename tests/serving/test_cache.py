"""Feature-cache keying, hit accounting and LRU behavior."""

import numpy as np
import pytest

from repro.serving import FeatureCache, ServiceStats, bucket_time


def _compute_spy():
    calls = []

    def compute(exchange_id, coins, time):
        calls.append((exchange_id, tuple(coins), time))
        return np.outer(coins, [time + 1.0, 2.0])

    return compute, calls


class TestBucketTime:
    def test_quantizes_down(self):
        assert bucket_time(17.9, 1.0) == 17.0
        assert bucket_time(17.9, 6.0) == 12.0

    def test_zero_is_identity(self):
        assert bucket_time(17.9, 0.0) == 17.9


class TestFeatureCache:
    def test_same_bucket_hits(self):
        compute, calls = _compute_spy()
        stats = ServiceStats()
        cache = FeatureCache(compute, bucket_hours=1.0, stats=stats)
        coins = np.array([5, 6, 7])
        first = cache.features(0, coins, 10.2)
        second = cache.features(0, coins, 10.9)
        np.testing.assert_array_equal(first, second)
        assert len(calls) == 1
        assert calls[0][2] == 10.0  # evaluated at the bucket start
        assert (stats.cache_hits, stats.cache_misses) == (1, 1)

    def test_exchange_and_coin_set_partition_the_key(self):
        compute, calls = _compute_spy()
        cache = FeatureCache(compute, bucket_hours=1.0)
        coins = np.array([5, 6])
        cache.features(0, coins, 10.0)
        cache.features(1, coins, 10.0)            # other exchange: miss
        cache.features(0, np.array([5, 8]), 10.0)  # other candidates: miss
        assert len(calls) == 3

    def test_exact_time_mode_hits_on_identical_timestamps(self):
        compute, calls = _compute_spy()
        cache = FeatureCache(compute, bucket_hours=0.0)
        coins = np.array([5])
        cache.features(0, coins, 10.25)
        cache.features(0, coins, 10.25)
        cache.features(0, coins, 10.26)
        assert len(calls) == 2

    def test_lru_evicts_oldest(self):
        compute, calls = _compute_spy()
        cache = FeatureCache(compute, bucket_hours=1.0, max_entries=2)
        coins = np.array([1])
        cache.features(0, coins, 0.0)
        cache.features(0, coins, 1.0)
        cache.features(0, coins, 0.0)   # refresh bucket 0
        cache.features(0, coins, 2.0)   # evicts bucket 1
        cache.features(0, coins, 0.0)   # still cached
        cache.features(0, coins, 1.0)   # recompute
        assert len(calls) == 4
        assert len(cache) == 2

    def test_disabled_cache_still_quantizes_and_counts(self):
        compute, calls = _compute_spy()
        stats = ServiceStats()
        cache = FeatureCache(compute, bucket_hours=1.0, max_entries=0,
                             stats=stats)
        coins = np.array([1])
        cache.features(0, coins, 10.2)
        cache.features(0, coins, 10.9)
        assert len(calls) == 2
        assert all(call[2] == 10.0 for call in calls)
        assert (stats.cache_hits, stats.cache_misses) == (0, 2)
        assert len(cache) == 0

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            FeatureCache(lambda *a: None, max_entries=-1)
