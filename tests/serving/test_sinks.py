"""Alert sinks: console lines, JSON-lines records, collection."""

import io
import json

from repro.core.predictor import CoinScore, Ranking
from repro.serving import (
    Announcement,
    CollectingSink,
    ConsoleAlertSink,
    JsonLinesAlertSink,
)
from repro.serving.service import Alert


def _alert():
    announcement = Announcement(channel_id=9, coin_id=11, exchange_id=1,
                                pair="BTC", time=120.0)
    scores = [
        CoinScore(11, "AAA", 0.9),
        CoinScore(12, "BBB", 0.5),
        CoinScore(13, "CCC", 0.1),
    ]
    ranking = Ranking(channel_id=9, exchange_id=1, pump_time=120.0,
                      scores=scores)
    return Alert(announcement=announcement, ranking=ranking, latency_ms=2.5)


def test_announced_rank():
    assert _alert().announced_rank == 1


def test_collecting_sink():
    sink = CollectingSink()
    sink.emit(_alert())
    assert len(sink.alerts) == 1


def test_console_sink_format():
    buffer = io.StringIO()
    ConsoleAlertSink(top_k=2, file=buffer).emit(_alert())
    line = buffer.getvalue()
    assert "channel=9" in line
    assert "AAA(0.90)" in line
    assert "#1" in line and "HIT" in line


def test_jsonl_sink_roundtrip(tmp_path):
    path = tmp_path / "alerts.jsonl"
    with JsonLinesAlertSink(path, top_k=2) as sink:
        sink.emit(_alert())
        sink.emit(_alert())
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(records) == 2
    record = records[0]
    assert record["channel_id"] == 9
    assert record["announced_rank"] == 1
    assert [entry["symbol"] for entry in record["top"]] == ["AAA", "BBB"]
    assert record["latency_ms"] == 2.5
