"""ServiceStats — registry-backed counters, bounded latency memory."""

from __future__ import annotations

import numpy as np

from repro.serving import ServiceStats
from repro.serving.stats import LATENCY_BUCKETS, RESERVOIR_CAPACITY
from repro.telemetry import MetricsRegistry, parse_text, render_text


class TestCounterAttributes:
    def test_augmented_assignment_and_reset(self):
        stats = ServiceStats()
        stats.messages += 1
        stats.messages += 2
        assert stats.messages == 3
        assert isinstance(stats.messages, int)
        stats.messages = 0  # legacy reset keeps working
        assert stats.messages == 0
        stats.messages += 5
        assert stats.messages == 5

    def test_counters_land_in_the_registry(self):
        registry = MetricsRegistry()
        stats = ServiceStats(registry)
        stats.alerts += 4
        stats.cache_hit()
        stats.cache_miss()
        samples = {(s.name, s.labels): s.value
                   for s in parse_text(render_text(registry))}
        assert samples[("service_alerts_total", ())] == 4
        assert samples[("service_cache_lookups_total",
                        (("result", "hit"),))] == 1
        assert samples[("service_cache_lookups_total",
                        (("result", "miss"),))] == 1

    def test_private_registries_do_not_merge(self):
        a, b = ServiceStats(), ServiceStats()
        a.alerts += 7
        assert b.alerts == 0

    def test_summary_keys_and_types(self):
        stats = ServiceStats()
        stats.messages += 10
        stats.alerts += 2
        stats.forward_passes += 1
        stats.record_latency(1.5, model="snn")
        summary = stats.summary()
        assert summary["messages"] == 10
        assert summary["alerts"] == 2
        assert summary["mean_batch_size"] == 2.0
        assert summary["latency_p50_ms"] == 1.5
        assert set(summary) == {
            "messages", "pump_messages", "sessions_closed", "announcements",
            "duplicate_releases", "alerts", "unknown_channels",
            "no_candidates", "forward_passes", "scored_rows",
            "mean_batch_size", "cache_hits", "cache_misses",
            "cache_hit_rate", "latency_p50_ms", "latency_p99_ms",
            "throughput_msg_per_s", "wall_seconds",
        }


class TestLatencyMemory:
    def test_exact_percentiles_within_reservoir(self):
        stats = ServiceStats()
        values = list(np.linspace(0.1, 50.0, 500))
        for v in values:
            stats.record_latency(v, model="snn")
        assert stats.latency_ms(50) == float(np.percentile(values, 50))
        assert stats.latency_ms(99) == float(np.percentile(values, 99))

    def test_million_recordings_stay_bounded(self):
        """The O(1)-memory regression: a long-running service must not
        accumulate one float per alert (the old ``_latencies_ms`` list)."""
        stats = ServiceStats()
        n = 1_000_000
        for _ in range(n):
            stats.record_latency(2.0, model="snn")
        assert len(stats._reservoir) == RESERVOIR_CAPACITY
        assert stats._reservoir.maxlen == RESERVOIR_CAPACITY
        assert stats._latency.count == n
        # Past the reservoir, percentiles fall back to the histogram
        # estimate — finite and inside the observed bucket.
        p99 = stats.latency_ms(99)
        assert np.isfinite(p99)
        assert 0.0 < p99 <= max(LATENCY_BUCKETS) * 1000.0

    def test_histogram_series_labelled_by_model(self):
        registry = MetricsRegistry()
        stats = ServiceStats(registry)
        stats.record_latency(3.0, model="DNNRanker")
        names = {(s.name, s.labels) for s in
                 parse_text(render_text(registry))}
        assert ("rank_latency_seconds_count",
                (("model", "DNNRanker"),)) in names

    def test_no_recordings_is_zero(self):
        stats = ServiceStats()
        assert stats.latency_ms(50) == 0.0
        assert stats.latency_ms(99) == 0.0
