"""Replay sources and the ordered message stream."""

import pytest

from repro.serving import MessageStream, ReplaySource
from repro.simulation.messages import Message


def _msg(message_id, channel_id, time, text="hello"):
    return Message(message_id, channel_id, float(time), text, "generic")


class TestReplaySource:
    def test_sorts_by_time_then_channel_then_id(self):
        messages = [
            _msg(2, 5, 3.0), _msg(0, 9, 1.0), _msg(1, 2, 3.0), _msg(3, 2, 2.0)
        ]
        replayed = list(ReplaySource(messages))
        assert [m.message_id for m in replayed] == [0, 3, 1, 2]

    def test_window_is_half_open(self):
        messages = [_msg(i, 0, t) for i, t in enumerate((0.0, 1.0, 2.0, 3.0))]
        replayed = list(ReplaySource(messages, start=1.0, stop=3.0))
        assert [m.time for m in replayed] == [1.0, 2.0]

    def test_channel_filter(self):
        messages = [_msg(0, 1, 0.0), _msg(1, 2, 1.0), _msg(2, 1, 2.0)]
        replayed = list(ReplaySource(messages, channel_ids=[1]))
        assert [m.message_id for m in replayed] == [0, 2]


class TestMessageStream:
    def test_counts_consumed(self):
        stream = MessageStream.replay([_msg(0, 1, 0.0), _msg(1, 1, 1.0)])
        assert len(list(stream)) == 2
        assert stream.consumed == 2

    def test_rejects_backwards_time(self):
        class Unsorted:
            def __iter__(self):
                return iter([_msg(0, 1, 5.0), _msg(1, 1, 4.0)])

        stream = MessageStream(Unsorted())
        with pytest.raises(ValueError, match="backwards"):
            list(stream)

    def test_replay_from_world(self, tiny_world):
        stream = MessageStream.replay(tiny_world, start=100.0, stop=200.0)
        times = [m.time for m in stream]
        assert times == sorted(times)
        assert all(100.0 <= t < 200.0 for t in times)
