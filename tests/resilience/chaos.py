"""A chaos TCP proxy: programmable network faults in front of a gateway.

The proxy listens on a free port and forwards to an upstream gateway.
Each accepted connection consumes the next planned fault (or passes
through cleanly when the plan is empty) — and the client SDK opens one
connection per request, so "the next N connections" is exactly "the next
N requests":

* ``reset``     — close the client socket immediately (RST-ish: the
                  client sees the connection die before any response).
* ``stall``     — read the request, then sit silent until the client's
                  socket timeout fires.
* ``truncate``  — answer with valid headers promising more body than is
                  sent, then close (an ``IncompleteRead`` client-side).
* ``error_503`` — answer with a well-formed 503 JSON error envelope
                  without consulting the upstream at all.

Everything runs on daemon threads; ``close()`` is idempotent.
"""

from __future__ import annotations

import json
import socket
import threading

FAULTS = ("reset", "stall", "truncate", "error_503")

_503_BODY = json.dumps({
    "schema_version": 1,
    "error": {"code": "internal", "message": "chaos proxy injected fault"},
}).encode("utf-8")

_503_RESPONSE = (
    b"HTTP/1.1 503 Service Unavailable\r\n"
    b"Content-Type: application/json\r\n"
    b"Content-Length: " + str(len(_503_BODY)).encode() + b"\r\n"
    b"Connection: close\r\n\r\n" + _503_BODY
)

_TRUNCATED_RESPONSE = (
    b"HTTP/1.1 200 OK\r\n"
    b"Content-Type: application/json\r\n"
    b"Content-Length: 65536\r\n"
    b"Connection: close\r\n\r\n"
    b'{"schema_version": 1, "alert": {"trunca'
)


class ChaosProxy:
    """Forward 127.0.0.1:<port> → upstream, injecting planned faults."""

    def __init__(self, upstream_host: str, upstream_port: int):
        self.upstream = (upstream_host, upstream_port)
        self._plan: list[str] = []
        self._lock = threading.Lock()
        self._closed = threading.Event()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(32)
        self.port = self._listener.getsockname()[1]
        self.url = f"http://127.0.0.1:{self.port}"
        self.connections_seen = 0
        self._accept_thread = threading.Thread(target=self._accept_loop,
                                               daemon=True)
        self._accept_thread.start()

    # -- fault planning ------------------------------------------------------

    def inject(self, fault: str, count: int = 1) -> None:
        """Queue ``count`` connections' worth of ``fault``."""
        if fault not in FAULTS:
            raise ValueError(f"unknown fault {fault!r}; one of {FAULTS}")
        with self._lock:
            self._plan.extend([fault] * count)

    def pending_faults(self) -> int:
        with self._lock:
            return len(self._plan)

    def _next_fault(self) -> str | None:
        with self._lock:
            self.connections_seen += 1
            return self._plan.pop(0) if self._plan else None

    # -- plumbing ------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return   # listener closed
            threading.Thread(target=self._handle, args=(client,),
                             daemon=True).start()

    def _handle(self, client: socket.socket) -> None:
        fault = self._next_fault()
        try:
            if fault == "reset":
                # Linger-0 turns close() into an RST so the client sees a
                # hard reset rather than a clean FIN.
                client.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    b"\x01\x00\x00\x00\x00\x00\x00\x00",
                )
                return
            if fault == "stall":
                # Swallow everything the client sends and answer nothing
                # until it gives up (recv returns b"" once the client's
                # timeout fires and it closes its end).
                client.settimeout(60.0)
                try:
                    while client.recv(65536):
                        pass
                except OSError:
                    pass
                return
            if fault == "truncate":
                self._drain_request(client)
                client.sendall(_TRUNCATED_RESPONSE)
                return
            if fault == "error_503":
                self._drain_request(client)
                client.sendall(_503_RESPONSE)
                return
            self._passthrough(client)
        except OSError:
            pass
        finally:
            try:
                client.close()
            except OSError:
                pass

    @staticmethod
    def _drain_request(client: socket.socket) -> None:
        """Read the request's headers+body (best effort, one recv is
        enough for the SDK's small single-send requests)."""
        client.settimeout(5.0)
        try:
            client.recv(65536)
        except OSError:
            pass

    def _passthrough(self, client: socket.socket) -> None:
        upstream = socket.create_connection(self.upstream, timeout=30.0)

        def pump(src: socket.socket, dst: socket.socket) -> None:
            try:
                while True:
                    chunk = src.recv(65536)
                    if not chunk:
                        break
                    dst.sendall(chunk)
            except OSError:
                pass
            finally:
                for sock in (src, dst):
                    try:
                        sock.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass

        threads = [
            threading.Thread(target=pump, args=(client, upstream),
                             daemon=True),
            threading.Thread(target=pump, args=(upstream, client),
                             daemon=True),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        upstream.close()

    def close(self) -> None:
        self._closed.set()
        try:
            self._listener.close()
        except OSError:
            pass


__all__ = ["ChaosProxy", "FAULTS"]
