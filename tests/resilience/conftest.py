"""Fixtures for the fault-injection suite: a real gateway plus a chaos
proxy in front of it.  The model/world fixtures are shared with the
store tests (same tiny world, same briefly trained artifact)."""

from __future__ import annotations

import pytest

from repro.gateway import GatewayApp, serve_in_thread
from tests.resilience.chaos import ChaosProxy
from tests.store.conftest import (  # noqa: F401 - registered as fixtures
    announcements_from,
    st_collection,
    st_positives,
    st_registry,
    st_service,
    st_world,
)


@pytest.fixture
def live_gateway(st_registry, st_service):  # noqa: F811 - fixture params
    """Factory for real HTTP gateways; all shut down on teardown."""
    servers = []

    def start(service=None, **server_kwargs):
        app = GatewayApp(service if service is not None else st_service(),
                         registry=st_registry)
        server, _thread = serve_in_thread(app, **server_kwargs)
        servers.append(server)
        return app, server

    yield start
    for server in servers:
        server.shutdown()
        server.server_close()


@pytest.fixture
def chaos():
    """Factory for chaos proxies fronting an upstream ``(host, port)``."""
    proxies = []

    def start(server) -> ChaosProxy:
        host, port = server.server_address[:2]
        proxy = ChaosProxy(host, port)
        proxies.append(proxy)
        return proxy

    yield start
    for proxy in proxies:
        proxy.close()
