"""Crash-safe recovery: kill the gateway, restart on the same event log.

Two layers of the same contract:

* in-process — a gateway's service+store are abandoned mid-flight (no
  flush, no close: the handles simply die with the "process") and a new
  gateway boots on the same file.  Rankings must come back bit-identical
  and no event may double-count.
* subprocess — the real ``repro gateway`` CLI is ``kill -9``-ed and
  restarted on the same ``--store``; the reborn process must rehydrate,
  serve identical rankings, deduplicate a pre-crash observe retry, and
  exit 0 on SIGTERM after draining.
"""

import os
import queue
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.gateway import GatewayApp, GatewayClient, serve_in_thread
from repro.serving import Announcement
from repro.store import SQLiteEventStore, rehydrate_service
from tests.store.conftest import announcements_from


def exact(ranking):
    return tuple((s.coin_id, s.probability) for s in ranking.scores)


class TestInProcessCrashRecovery:
    def test_http_streamed_state_survives_a_crash(self, st_registry,
                                                  st_service, st_positives,
                                                  tmp_path):
        db = tmp_path / "events.db"
        streamed = announcements_from(st_positives, 3)
        probe = Announcement(channel_id=streamed[0].channel_id, coin_id=-1,
                             exchange_id=0, pair="BTC",
                             time=streamed[0].time + 1.0)

        # First life: real HTTP traffic into a store-backed gateway.
        first_app = GatewayApp(
            st_service(store=SQLiteEventStore(db)), registry=st_registry)
        first_server, _ = serve_in_thread(first_app)
        client = GatewayClient(first_server.url)
        ids = [f"cli:recovery-{i}" for i in range(len(streamed))]
        for announcement, event_id in zip(streamed, ids):
            assert client.observe(announcement,
                                  event_id=event_id).duplicate is False
        expected = exact(client.rank(probe).ranking)
        alerts_before = first_app.service.stats.alerts
        # The crash: the server stops but neither flushes nor closes the
        # store — every committed append must already be durable.
        first_server.shutdown()
        first_server.server_close()

        # Second life: fresh service, fresh handle, same file.
        store = SQLiteEventStore(db)
        reborn = st_service(store=store)
        recovered = rehydrate_service(reborn, store)
        assert recovered["observations"] == len(streamed)
        second_app = GatewayApp(reborn, registry=st_registry)
        second_server, _ = serve_in_thread(second_app)
        try:
            client = GatewayClient(second_server.url)
            assert exact(client.rank(probe).ranking) == expected
            # stats survived: the pre-crash rank is still counted.
            assert client.stats().service["alerts"] >= alerts_before
            # A client retrying its pre-crash observes: all duplicates,
            # nothing double-counted.
            for announcement, event_id in zip(streamed, ids):
                assert client.observe(announcement,
                                      event_id=event_id).duplicate is True
            assert store.counts()["observations"] == len(streamed)
            assert exact(client.rank(probe).ranking) == expected
        finally:
            second_server.shutdown()
            second_server.server_close()


class _LineReader:
    """Pump a subprocess's stdout into a queue without blocking the test."""

    def __init__(self, proc: subprocess.Popen):
        self.lines: "queue.Queue[str]" = queue.Queue()
        self.seen: list[str] = []
        self._thread = threading.Thread(target=self._pump, args=(proc,),
                                        daemon=True)
        self._thread.start()

    def _pump(self, proc: subprocess.Popen) -> None:
        for line in proc.stdout:
            self.lines.put(line)

    def wait_for(self, needle: str, timeout: float = 180.0) -> str:
        # A line consumed while waiting for an earlier needle still
        # satisfies a later wait (boot prints several lines at once).
        for line in self.seen:
            if needle in line:
                return line
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise AssertionError(
                    f"never saw {needle!r} in gateway output; got:\n"
                    + "".join(self.seen))
            try:
                line = self.lines.get(timeout=min(remaining, 1.0))
            except queue.Empty:
                continue
            self.seen.append(line)
            if needle in line:
                return line


def _spawn_gateway(artifact: Path, db: Path) -> tuple[subprocess.Popen,
                                                      _LineReader, str]:
    src_root = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_root), env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "gateway",
         "--scale", "tiny", "--seed", "7",
         "--load", str(artifact), "--registry", str(artifact.parents[1]),
         "--host", "127.0.0.1", "--port", "0",
         "--store", str(db), "--snapshot-s", "1", "--drain-s", "5"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, start_new_session=True,
    )
    reader = _LineReader(proc)
    line = reader.wait_for("gateway listening on http://")
    url = line.split("listening on ", 1)[1].split()[0]
    return proc, reader, url


@pytest.mark.slow
class TestSubprocessKill9:
    def test_kill9_restart_rehydrate_bit_identical(self, st_registry,
                                                   st_positives, tmp_path):
        artifact = st_registry.resolve("dnn")
        db = tmp_path / "events.db"
        streamed = announcements_from(st_positives, 2)
        probe = Announcement(channel_id=streamed[0].channel_id, coin_id=-1,
                             exchange_id=0, pair="BTC",
                             time=streamed[0].time + 1.0)

        # Life 1: boot, stream observations + rankings, then kill -9.
        proc, _reader, url = _spawn_gateway(artifact, db)
        try:
            client = GatewayClient(url)
            for i, announcement in enumerate(streamed):
                assert client.observe(
                    announcement, event_id=f"cli:kill9-{i}"
                ).duplicate is False
            expected = exact(client.rank(probe).ranking)
            assert client.stats().service["alerts"] >= 1
        finally:
            proc.kill()   # SIGKILL: no drain, no flush, no goodbye
            proc.wait(timeout=30)

        # The WAL holds the history even though the process never exited.
        with SQLiteEventStore(db) as store:
            counts = store.counts()
        assert counts["observations"] == len(streamed)
        assert counts["alerts"] >= 1

        # Life 2: same command, same store — must rehydrate and agree.
        proc, reader, url = _spawn_gateway(artifact, db)
        try:
            boot_line = reader.wait_for("rehydrated from")
            assert f"{len(streamed)} observations" in boot_line
            client = GatewayClient(url)
            assert exact(client.rank(probe).ranking) == expected, \
                "rehydrated gateway must rank bit-identically"
            # A pre-crash observe retransmission: deduplicated, not
            # double-counted.
            assert client.observe(streamed[0],
                                  event_id="cli:kill9-0").duplicate is True
            # Satellite (b): SIGTERM → drain → flush → exit 0.
            os.killpg(os.getpgid(proc.pid), signal.SIGTERM)
            reader.wait_for("drained, event log flushed")
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        with SQLiteEventStore(db) as store:
            assert store.counts()["observations"] == len(streamed)
            assert store.latest_stats() is not None
