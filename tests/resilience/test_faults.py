"""Fault injection: the client SDK and gateway under real network chaos.

A genuine gateway serves a trained model; a :class:`ChaosProxy` between
client and server injects connection resets, stalls, truncated responses
and 5xx bursts.  The assertions pin the resilience contract: transient
faults are retried to success, persistent ones surface as typed errors,
the breaker stops hammering a dead peer, and the server sheds load with
fast 429s instead of queueing.
"""

import threading
import time

import pytest

from repro.gateway import (
    GatewayCircuitOpenError,
    GatewayClient,
    GatewayConnectionError,
    GatewayRequestError,
    GatewayTimeoutError,
)
from repro.gateway.schema import DEADLINE_HEADER
from repro.resilience import NO_RETRY, CircuitBreaker, RetryPolicy
from tests.store.conftest import announcements_from

#: Fast backoff so a chaos run costs milliseconds, not the default 50ms+.
FAST_RETRY = RetryPolicy(max_attempts=4, base_delay=0.01, max_delay=0.05,
                         jitter=0.0)


@pytest.fixture
def proxied(live_gateway, chaos, st_positives):
    """(proxy, client, probe): a retrying client talking through chaos."""
    _app, server = live_gateway()
    proxy = chaos(server)
    client = GatewayClient(proxy.url, timeout=5.0, retry=FAST_RETRY)
    probe = announcements_from(st_positives, 1)[0]
    return proxy, client, probe


def retries_of(client, endpoint: str) -> float:
    return client._m_retries.labels(endpoint=endpoint).value()


class TestTransientFaultsRetryToSuccess:
    def test_connection_reset(self, proxied):
        proxy, client, probe = proxied
        before = retries_of(client, "rank")
        proxy.inject("reset", count=2)
        alert = client.rank(probe)
        assert alert.announced_rank >= 1
        assert proxy.pending_faults() == 0
        assert retries_of(client, "rank") == before + 2

    def test_5xx_burst(self, proxied):
        proxy, client, probe = proxied
        proxy.inject("error_503", count=3)
        alert = client.rank(probe)
        assert alert.announcement == probe
        assert proxy.pending_faults() == 0

    def test_truncated_response(self, proxied):
        proxy, client, probe = proxied
        before = retries_of(client, "rank")
        proxy.inject("truncate")
        assert client.rank(probe).announced_rank >= 1
        assert retries_of(client, "rank") == before + 1

    def test_observe_retry_does_not_double_count(self, proxied):
        proxy, client, probe = proxied
        # The response of the first attempt is lost after the server may
        # have processed it — the classic at-least-once hazard.  The
        # client-minted event id makes the retransmission safe.
        proxy.inject("reset")
        response = client.observe(probe)
        length = response.history_length
        # An explicit retransmission of the same logical event: the
        # server reports the duplicate and history stays put.
        replay = client.observe(probe, event_id="cli:fixed-id")
        again = client.observe(probe, event_id="cli:fixed-id")
        assert again.duplicate is True
        assert replay.history_length == again.history_length >= length

    def test_mixed_fault_storm_eventually_succeeds(self, proxied):
        proxy, client, probe = proxied
        proxy.inject("reset")
        proxy.inject("error_503")
        proxy.inject("truncate")
        assert client.rank(probe).announced_rank >= 1


class TestPersistentFaultsSurfaceTyped:
    def test_exhausted_retries_reraise_the_connection_error(self, proxied):
        proxy, client, probe = proxied
        proxy.inject("reset", count=FAST_RETRY.max_attempts + 2)
        with pytest.raises(GatewayConnectionError):
            client.rank(probe)

    def test_stall_becomes_a_typed_timeout(self, live_gateway, chaos,
                                           st_positives):
        _app, server = live_gateway()
        proxy = chaos(server)
        client = GatewayClient(proxy.url, timeout=0.3, retry=NO_RETRY)
        proxy.inject("stall")
        probe = announcements_from(st_positives, 1)[0]
        started = time.monotonic()
        with pytest.raises(GatewayTimeoutError):
            client.rank(probe)
        # The timeout fired, not the 60s stall.
        assert time.monotonic() - started < 5.0

    def test_non_retryable_4xx_is_not_retried(self, proxied):
        proxy, client, _probe = proxied
        before = retries_of(client, "rank")
        with pytest.raises(GatewayRequestError) as exc:
            client._call("rank", lambda: client._request(
                "POST", "/v1/rank", {"schema_version": 1}))
        assert exc.value.code == "bad_request"
        assert retries_of(client, "rank") == before


class TestCircuitBreaker:
    def test_opens_and_stops_touching_the_socket(self, live_gateway, chaos,
                                                 st_positives):
        _app, server = live_gateway()
        proxy = chaos(server)
        breaker = CircuitBreaker(failure_threshold=2, reset_after=60.0)
        client = GatewayClient(proxy.url, timeout=5.0, retry=NO_RETRY,
                               breaker=breaker)
        probe = announcements_from(st_positives, 1)[0]
        proxy.inject("reset", count=2)
        for _ in range(2):
            with pytest.raises(GatewayConnectionError):
                client.rank(probe)
        assert breaker.state == CircuitBreaker.OPEN
        seen = proxy.connections_seen
        with pytest.raises(GatewayCircuitOpenError) as exc:
            client.rank(probe)
        assert exc.value.retry_after > 0
        assert proxy.connections_seen == seen, \
            "an open breaker must refuse locally, not dial the gateway"

    def test_half_open_probe_success_closes(self, live_gateway, chaos,
                                            st_positives):
        _app, server = live_gateway()
        proxy = chaos(server)
        breaker = CircuitBreaker(failure_threshold=2, reset_after=0.05)
        client = GatewayClient(proxy.url, timeout=5.0, retry=NO_RETRY,
                               breaker=breaker)
        probe = announcements_from(st_positives, 1)[0]
        proxy.inject("reset", count=2)
        for _ in range(2):
            with pytest.raises(GatewayConnectionError):
                client.rank(probe)
        time.sleep(0.1)   # past reset_after: next call is the probe
        assert client.rank(probe).announced_rank >= 1
        assert breaker.state == CircuitBreaker.CLOSED


class TestLoadShedding:
    def test_over_limit_requests_get_fast_429(self, live_gateway,
                                              st_positives):
        app, server = live_gateway(max_inflight=1)
        client = GatewayClient(server.url, retry=NO_RETRY)
        probe = announcements_from(st_positives, 1)[0]
        assert server.admission.try_enter()   # occupy the only slot
        try:
            with pytest.raises(GatewayRequestError) as exc:
                client.rank(probe)
            assert exc.value.status == 429
            assert exc.value.code == "overloaded"
            assert app._m_shed.labels(reason="overloaded").value() >= 1
            # Health and metrics must keep answering under overload.
            assert client.healthz().status == "ok"
            assert "gateway_shed_total" in client.metrics_text()
        finally:
            server.admission.leave()
        assert client.rank(probe).announced_rank >= 1

    def test_shed_is_retryable_so_backoff_wins_through(self, live_gateway,
                                                       st_positives):
        _app, server = live_gateway(max_inflight=1)
        client = GatewayClient(server.url, retry=FAST_RETRY)
        probe = announcements_from(st_positives, 1)[0]
        assert server.admission.try_enter()
        release = threading.Timer(0.02, server.admission.leave)
        release.start()
        try:
            assert client.rank(probe).announced_rank >= 1
        finally:
            release.join()

    def test_429_keeps_the_breaker_closed(self, live_gateway, st_positives):
        # Shedding is the server being healthy under load — the breaker
        # must not conflate it with an outage.
        breaker = CircuitBreaker(failure_threshold=1, reset_after=60.0)
        _app, server = live_gateway(max_inflight=1)
        client = GatewayClient(server.url, retry=NO_RETRY, breaker=breaker)
        probe = announcements_from(st_positives, 1)[0]
        assert server.admission.try_enter()
        try:
            with pytest.raises(GatewayRequestError):
                client.rank(probe)
            assert breaker.state == CircuitBreaker.CLOSED
        finally:
            server.admission.leave()


class TestDeadlines:
    def test_client_deadline_expired_before_scoring(self, live_gateway,
                                                    st_positives):
        app, server = live_gateway()
        client = GatewayClient(server.url, retry=NO_RETRY,
                               deadline_ms=0.001)
        probe = announcements_from(st_positives, 1)[0]
        with pytest.raises(GatewayRequestError) as exc:
            client.rank(probe)
        assert exc.value.status == 503
        assert exc.value.code == "deadline_exceeded"
        assert app._m_shed.labels(reason="deadline").value() >= 1

    def test_server_default_deadline_applies(self, live_gateway,
                                             st_positives):
        _app, server = live_gateway(deadline_ms=0.001)
        client = GatewayClient(server.url, retry=NO_RETRY)
        probe = announcements_from(st_positives, 1)[0]
        with pytest.raises(GatewayRequestError) as exc:
            client.rank(probe)
        assert exc.value.code == "deadline_exceeded"
        # A client header overrides the stingy server default.
        generous = GatewayClient(server.url, retry=NO_RETRY,
                                 deadline_ms=30_000.0)
        assert generous.rank(probe).announced_rank >= 1

    def test_garbage_deadline_header_is_a_400(self, live_gateway):
        _app, server = live_gateway()
        client = GatewayClient(server.url, retry=NO_RETRY)
        for bad in ("soon", "-5", "0", "nan"):
            status, raw = client._transport(
                "GET", "/v1/healthz", None, {DEADLINE_HEADER: bad})
            assert status == 400, bad
            assert b"bad_request" in raw

    def test_generous_deadline_is_harmless(self, live_gateway,
                                           st_positives):
        _app, server = live_gateway()
        client = GatewayClient(server.url, retry=NO_RETRY,
                               deadline_ms=60_000.0)
        probe = announcements_from(st_positives, 1)[0]
        assert client.rank(probe).announced_rank >= 1


class TestGracefulDrain:
    def test_draining_gateway_refuses_new_work_but_stays_observable(
            self, live_gateway, st_positives):
        app, server = live_gateway()
        client = GatewayClient(server.url, retry=NO_RETRY)
        probe = announcements_from(st_positives, 1)[0]
        assert client.rank(probe).announced_rank >= 1

        server.begin_drain()
        with pytest.raises(GatewayRequestError) as exc:
            client.rank(probe)
        assert exc.value.status == 429
        assert exc.value.code == "overloaded"
        assert app._m_shed.labels(reason="draining").value() >= 1
        # Operators keep their eyes during the drain.
        assert client.healthz().status == "ok"
        assert client.stats().service["alerts"] >= 1
        assert server.wait_drained(timeout=5.0) is True
