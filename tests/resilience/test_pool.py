"""Worker-pool lifecycle over the real CLI (PR 9).

One ``repro gateway --workers 2 --store`` subprocess, taken through the
whole supervision contract:

* a ``kill -9``-ed worker is respawned and the pool keeps answering;
* observations stream through one worker, deduplicate through the
  shared event log on every worker, and never double-count;
* rankings from different connections (hence possibly different
  workers) are bit-identical to each other *and* to an in-process
  service rehydrated from the same store;
* any worker's ``/v1/metrics`` answers for the whole pool;
* SIGTERM to the supervisor fans out, every worker drains and flushes,
  and the supervisor exits 0.
"""

from __future__ import annotations

import os
import queue
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.gateway import GatewayClient
from repro.serving import Announcement
from repro.store import SQLiteEventStore, rehydrate_service
from tests.resilience.test_recovery import _LineReader, exact
from tests.store.conftest import announcements_from

_SERVING = re.compile(r"gateway\[w(\d+)\]: serving \(pid (\d+)\)")


def _spawn_pool(artifact: Path, db: Path, workers: int
                ) -> tuple[subprocess.Popen, _LineReader, str]:
    src_root = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_root), env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "gateway",
         "--scale", "tiny", "--seed", "7",
         "--load", str(artifact), "--registry", str(artifact.parents[1]),
         "--host", "127.0.0.1", "--port", "0",
         "--workers", str(workers), "--batch-window-ms", "2",
         "--store", str(db), "--snapshot-s", "1", "--drain-s", "5"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, start_new_session=True,
    )
    reader = _LineReader(proc)
    line = reader.wait_for("gateway listening on http://")
    url = line.split("listening on ", 1)[1].split()[0]
    return proc, reader, url


def _worker_pids(reader: _LineReader, expect: int) -> dict[int, int]:
    """Worker slot -> pid from the ``serving (pid N)`` boot lines."""
    pids: dict[int, int] = {}
    for slot in range(expect):
        # Per-slot needles: wait_for replays already-seen lines, so a
        # generic "serving (pid" needle would match slot 0 forever.
        line = reader.wait_for(f"gateway[w{slot}]: serving (pid")
        match = _SERVING.search(line)
        assert match, line
        pids[slot] = int(match.group(2))
    return pids


def _wait_for_respawn(reader: _LineReader, slot: int, old_pid: int,
                      timeout: float = 180.0) -> int:
    """Block until worker ``slot`` serves again under a fresh pid.

    Drains ``reader.lines`` directly: the needle a ``wait_for`` would
    use is already in ``seen`` from the first boot, so only genuinely
    new output can prove the respawn.
    """
    def fresh(line: str) -> int | None:
        match = _SERVING.search(line)
        if match and int(match.group(1)) == slot \
                and int(match.group(2)) != old_pid:
            return int(match.group(2))
        return None

    for line in reader.seen:
        pid = fresh(line)
        if pid is not None:
            return pid
    deadline = time.monotonic() + timeout
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise AssertionError(
                f"worker {slot} never respawned; got:\n"
                + "".join(reader.seen))
        try:
            line = reader.lines.get(timeout=min(remaining, 1.0))
        except queue.Empty:
            continue
        reader.seen.append(line)
        pid = fresh(line)
        if pid is not None:
            return pid


@pytest.mark.slow
class TestWorkerPoolLifecycle:
    def test_crash_respawn_dedup_parity_and_drain(self, st_registry,
                                                  st_service, st_positives,
                                                  tmp_path):
        artifact = st_registry.resolve("dnn")
        db = tmp_path / "events.db"
        streamed = announcements_from(st_positives, 3)
        probe = Announcement(channel_id=streamed[0].channel_id, coin_id=-1,
                             exchange_id=0, pair="BTC",
                             time=streamed[0].time + 1.0)

        proc, reader, url = _spawn_pool(artifact, db, workers=2)
        try:
            reader.wait_for("gateway pool: supervising 2 workers")
            pids = _worker_pids(reader, expect=2)
            assert len(pids) == 2

            client = GatewayClient(url, timeout=120.0)
            assert client.healthz().status == "ok"

            # Crash one worker: the supervisor must respawn it and the
            # pool must keep answering throughout.
            os.kill(pids[0], signal.SIGKILL)
            reader.wait_for("; respawning")
            new_pid = _wait_for_respawn(reader, slot=0, old_pid=pids[0])
            assert new_pid != pids[0]
            assert client.healthz().status == "ok"

            # Stream observations (fresh), then retransmit them through a
            # *new* client — new connections, possibly another worker.
            # The shared event log must deduplicate every one.
            for i, announcement in enumerate(streamed):
                assert client.observe(
                    announcement, event_id=f"cli:pool-{i}"
                ).duplicate is False
            retrier = GatewayClient(url, timeout=120.0)
            for i, announcement in enumerate(streamed):
                assert retrier.observe(
                    announcement, event_id=f"cli:pool-{i}"
                ).duplicate is True

            # Rankings agree across connections/workers, and with an
            # in-process service rehydrated from the same event log.
            first = exact(client.rank(probe).ranking)
            second = exact(retrier.rank(probe).ranking)
            assert first == second
            with SQLiteEventStore(db) as store:
                reborn = st_service(store=store)
                recovered = rehydrate_service(reborn, store)
                assert recovered["observations"] == len(streamed)
                assert exact(
                    reborn.rank_batch([probe])[0].ranking) == first

            # Any single worker answers a pool-level metrics scrape.
            deadline = time.monotonic() + 30.0
            while True:
                metrics = client.metrics_text()
                if ("gateway_requests_total" in metrics
                        and 'worker="0"' in metrics
                        and 'worker="1"' in metrics):
                    break
                assert time.monotonic() < deadline, metrics
                time.sleep(1.0)

            # SIGTERM the supervisor: fan-out, drain, flush, exit 0.
            os.kill(proc.pid, signal.SIGTERM)
            reader.wait_for("gateway[w0]: drained, event log flushed")
            reader.wait_for("gateway[w1]: drained, event log flushed")
            reader.wait_for("gateway pool: all workers exited")
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
                proc.wait(timeout=30)

        # Nothing double-counted, stats snapshot flushed.
        with SQLiteEventStore(db) as store:
            assert store.counts()["observations"] == len(streamed)
            assert store.latest_stats() is not None
