"""repro.resilience primitives under fake clocks — pure, deterministic."""

import random
import threading

import pytest

from repro.resilience import (
    AdmissionQueue,
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    NO_RETRY,
    RetryPolicy,
    call_with_retry,
    current_deadline,
    deadline_scope,
)


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_remaining_counts_down_and_clamps(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        assert not deadline.expired
        clock.advance(10.0)
        assert deadline.remaining() == 0.0
        assert deadline.expired

    def test_check_raises_once_expired(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(250.0, clock=clock)
        deadline.check("scoring")
        clock.advance(0.3)
        with pytest.raises(DeadlineExceeded) as exc:
            deadline.check("scoring")
        assert "scoring" in str(exc.value)
        assert "250" in str(exc.value)

    def test_scope_installs_and_restores(self):
        assert current_deadline() is None
        deadline = Deadline(1.0, clock=FakeClock())
        with deadline_scope(deadline):
            assert current_deadline() is deadline
            with deadline_scope(None):   # None nests without complaint
                assert current_deadline() is None
            assert current_deadline() is deadline
        assert current_deadline() is None

    def test_scope_is_per_thread(self):
        seen = []
        deadline = Deadline(1.0, clock=FakeClock())

        def worker():
            seen.append(current_deadline())

        with deadline_scope(deadline):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # A fresh thread starts outside any scope — a request's deadline
        # never leaks into another handler thread.
        assert seen == [None]


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)

    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=10.0,
                             jitter=0.0)
        assert [policy.delay(n) for n in (1, 2, 3, 4)] == \
            [0.1, 0.2, 0.4, 0.8]

    def test_max_delay_caps_the_curve(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=3.0,
                             jitter=0.0)
        assert policy.delay(5) == 3.0

    def test_jitter_is_full_range_downward(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.5)
        rng = random.Random(7)
        draws = [policy.delay(1, rng) for _ in range(200)]
        assert all(0.5 <= d <= 1.0 for d in draws)
        assert len(set(draws)) > 100   # actually randomized

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


class TestCallWithRetry:
    def test_retries_then_succeeds(self):
        sleeps = []
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ConnectionError("nope")
            return "ok"

        result = call_with_retry(
            flaky, policy=RetryPolicy(max_attempts=3, jitter=0.0),
            retryable=(ConnectionError,), sleep=sleeps.append,
        )
        assert result == "ok"
        assert len(attempts) == 3
        assert sleeps == [0.05, 0.1]

    def test_exhaustion_reraises_the_last_error(self):
        def always_fails():
            raise ConnectionError("still down")

        with pytest.raises(ConnectionError, match="still down"):
            call_with_retry(
                always_fails, policy=RetryPolicy(max_attempts=2, jitter=0.0),
                retryable=(ConnectionError,), sleep=lambda _s: None,
            )

    def test_non_retryable_errors_pass_straight_through(self):
        attempts = []

        def fails_differently():
            attempts.append(1)
            raise KeyError("fatal")

        with pytest.raises(KeyError):
            call_with_retry(fails_differently, retryable=(ConnectionError,),
                            sleep=lambda _s: None)
        assert len(attempts) == 1

    def test_no_retry_policy_means_one_attempt(self):
        attempts = []

        def fails():
            attempts.append(1)
            raise ConnectionError

        with pytest.raises(ConnectionError):
            call_with_retry(fails, policy=NO_RETRY,
                            retryable=(ConnectionError,),
                            sleep=lambda _s: None)
        assert len(attempts) == 1

    def test_on_retry_hook_sees_attempt_error_delay(self):
        calls = []

        def flaky():
            if not calls:
                raise ConnectionError("first")
            return "ok"

        call_with_retry(
            flaky, policy=RetryPolicy(max_attempts=2, jitter=0.0),
            retryable=(ConnectionError,),
            on_retry=lambda *a: calls.append(a), sleep=lambda _s: None,
        )
        [(attempt, exc, delay)] = calls
        assert attempt == 1
        assert str(exc) == "first"
        assert delay == 0.05


class TestCircuitBreaker:
    def make(self, clock, threshold=3, reset_after=10.0):
        return CircuitBreaker(failure_threshold=threshold,
                              reset_after=reset_after, clock=clock)

    def test_opens_after_consecutive_failures(self):
        breaker = self.make(FakeClock())
        for _ in range(3):
            breaker.allow()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpenError) as exc:
            breaker.allow()
        assert exc.value.retry_after == pytest.approx(10.0)

    def test_success_resets_the_streak(self):
        breaker = self.make(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.allow()   # still admitting

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        breaker.allow()   # the probe slips through
        with pytest.raises(CircuitOpenError):
            breaker.allow()   # concurrent caller during the probe: refused

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.consecutive_failures == 0

    def test_probe_failure_reopens_and_restarts_the_clock(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(9.9)   # not yet: the clock restarted at the re-open
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        clock.advance(0.2)
        breaker.allow()      # next probe window


class TestAdmissionQueue:
    def test_bounded_admission_sheds_over_the_limit(self):
        queue = AdmissionQueue(limit=2)
        assert queue.try_enter() and queue.try_enter()
        assert queue.try_enter() is False
        assert queue.shed_total == 1
        queue.leave()
        assert queue.try_enter() is True
        assert queue.inflight == 2

    def test_unbounded_still_counts_for_drain(self):
        queue = AdmissionQueue(limit=None)
        assert queue.try_enter() is True
        assert queue.inflight == 1
        assert queue.drain(timeout=0.01) is False
        queue.leave()
        assert queue.drain(timeout=0.01) is True

    def test_leave_without_enter_is_a_bug(self):
        with pytest.raises(RuntimeError):
            AdmissionQueue().leave()

    def test_drain_wakes_when_the_last_request_leaves(self):
        queue = AdmissionQueue(limit=4)
        queue.try_enter()
        drained = threading.Event()

        def waiter():
            if queue.drain(timeout=5.0):
                drained.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        queue.leave()
        thread.join(timeout=5.0)
        assert drained.is_set()
