"""Tests for the positional attention module (paper §5.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Adam, PositionalAttention, Tensor
from repro.nn.gradcheck import gradcheck


@pytest.fixture
def rng():
    return np.random.default_rng(5)


class TestConstruction:
    def test_uniform_channels(self, rng):
        att = PositionalAttention(seq_len=10, num_features=4, channels=3, rng=rng)
        assert att.output_dim == 12
        assert att.channels == [3, 3, 3, 3]

    def test_per_feature_channels(self, rng):
        att = PositionalAttention(10, 3, channels=[1, 5, 2], rng=rng)
        assert att.output_dim == 8

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            PositionalAttention(0, 3, rng=rng)
        with pytest.raises(ValueError):
            PositionalAttention(5, 2, channels=[1, 2, 3], rng=rng)
        with pytest.raises(ValueError):
            PositionalAttention(5, 2, channels=[1, 0], rng=rng)


class TestForward:
    def test_output_shape(self, rng):
        att = PositionalAttention(20, 7, channels=8, rng=rng)
        out = att(Tensor(rng.normal(size=(4, 20, 7))))
        assert out.shape == (4, 56)

    def test_wrong_shape_rejected(self, rng):
        att = PositionalAttention(20, 7, channels=8, rng=rng)
        with pytest.raises(ValueError):
            att(Tensor(rng.normal(size=(4, 19, 7))))
        with pytest.raises(ValueError):
            att(Tensor(rng.normal(size=(4, 20))))

    def test_zero_init_gives_uniform_average(self, rng):
        """With zero logits the module averages positions uniformly (paper init)."""
        att = PositionalAttention(5, 2, channels=1, rng=rng)
        x = rng.normal(size=(3, 5, 2))
        out = att(Tensor(x)).numpy()
        assert np.allclose(out, x.mean(axis=1), atol=1e-12)

    def test_gradcheck(self, rng):
        att = PositionalAttention(6, 3, channels=2, rng=rng)
        gradcheck(lambda x: att(x), [rng.normal(size=(2, 6, 3))], atol=1e-4)

    def test_gradcheck_with_mapping_mlp(self, rng):
        att = PositionalAttention(6, 3, channels=2, rng=rng, mapping_hidden=4)
        gradcheck(lambda x: att(x), [rng.normal(size=(2, 6, 3))], atol=1e-4)


class TestAttentionWeights:
    def test_weights_shape_and_simplex(self, rng):
        att = PositionalAttention(10, 3, channels=[2, 3, 1], rng=rng)
        weights = att.attention_weights()
        assert weights.shape == (6, 10)
        assert np.allclose(weights.sum(axis=1), 1.0)

    def test_by_feature_grouping(self, rng):
        att = PositionalAttention(10, 3, channels=[2, 3, 1], rng=rng)
        groups = att.attention_by_feature()
        assert [g.shape for g in groups] == [(2, 10), (3, 10), (1, 10)]

    def test_learns_skip_correlation(self, rng):
        """The module can learn to attend to position 3 only (skip pattern).

        Target = the feature value at position 3; the closest position is
        irrelevant.  RNN-free attention should nail this quickly.
        """
        att = PositionalAttention(8, 1, channels=1, rng=rng)
        opt = Adam(att.parameters(), lr=0.2)
        gen = np.random.default_rng(0)
        for _ in range(150):
            x = gen.normal(size=(32, 8, 1))
            target = x[:, 3, 0]
            opt.zero_grad()
            out = att(Tensor(x))
            loss = ((out.reshape(32) - Tensor(target)) ** 2).mean()
            loss.backward()
            opt.step()
        weights = att.attention_weights()[0]
        assert weights[3] > 0.9

    def test_channels_are_independent(self, rng):
        """Two heads of one feature can learn two different positions."""
        att = PositionalAttention(6, 1, channels=2, rng=rng)
        opt = Adam(att.parameters(), lr=0.2)
        gen = np.random.default_rng(0)
        for _ in range(200):
            x = gen.normal(size=(32, 6, 1))
            target = np.stack([x[:, 1, 0], x[:, 4, 0]], axis=1)
            opt.zero_grad()
            out = att(Tensor(x))
            loss = ((out - Tensor(target)) ** 2).mean()
            loss.backward()
            opt.step()
        weights = att.attention_weights()
        assert weights[0, 1] > 0.85
        assert weights[1, 4] > 0.85


@settings(max_examples=20, deadline=None)
@given(
    seq_len=st.integers(min_value=1, max_value=12),
    features=st.integers(min_value=1, max_value=5),
    channels=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=1_000),
)
def test_property_attention_is_convex_combination(seq_len, features, channels, seed):
    """Outputs always lie within the min/max of each feature across positions."""
    rng = np.random.default_rng(seed)
    att = PositionalAttention(seq_len, features, channels=channels, rng=rng)
    att.logits.data = rng.normal(size=att.logits.shape)  # arbitrary logits
    x = rng.normal(size=(3, seq_len, features))
    out = att(Tensor(x)).numpy().reshape(3, features, channels)
    lo = x.min(axis=1)[:, :, None] - 1e-9
    hi = x.max(axis=1)[:, :, None] + 1e-9
    assert (out >= lo).all() and (out <= hi).all()
