"""Edge-case tests for tensor ops not covered by the main gradcheck suite."""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad, where_constant
from repro.nn.gradcheck import gradcheck


class TestWhereConstant:
    def test_forward_selects_by_mask(self):
        mask = np.array([True, False, True])
        out = where_constant(mask, Tensor([1.0, 1.0, 1.0]), Tensor([2.0, 2.0, 2.0]))
        assert np.allclose(out.numpy(), [1.0, 2.0, 1.0])

    def test_gradients_route_by_mask(self):
        mask = np.array([True, False])
        a = Tensor(np.array([1.0, 1.0]), requires_grad=True)
        b = Tensor(np.array([2.0, 2.0]), requires_grad=True)
        where_constant(mask, a, b).sum().backward()
        assert np.allclose(a.grad, [1.0, 0.0])
        assert np.allclose(b.grad, [0.0, 1.0])

    def test_gradcheck(self):
        rng = np.random.default_rng(0)
        mask = rng.random((3, 4)) > 0.5
        gradcheck(lambda a, b: where_constant(mask, a, b),
                  [rng.normal(size=(3, 4)), rng.normal(size=(3, 4))])


class TestScalarsAndShapes:
    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_len_matches_first_dim(self):
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_reshape_with_tuple(self):
        t = Tensor(np.arange(6.0))
        assert t.reshape((2, 3)).shape == (2, 3)

    def test_transpose_default_reverses(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.transpose().shape == (4, 3, 2)

    def test_pow_requires_scalar(self):
        with pytest.raises(TypeError):
            Tensor(np.ones(3)) ** np.ones(3)

    def test_pad_negative_rejected(self):
        from repro.nn import pad_time_left

        with pytest.raises(ValueError):
            pad_time_left(Tensor(np.zeros((1, 2, 3))), -1)

    def test_pad_zero_is_identity(self):
        from repro.nn import pad_time_left

        t = Tensor(np.ones((1, 2, 3)))
        assert pad_time_left(t, 0) is t


class TestGradModeInteraction:
    def test_nested_no_grad_restores(self):
        from repro.nn import is_grad_enabled

        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_backward_seed_gradient(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = x * 3.0
        y.backward(np.array([1.0, 10.0]))
        assert np.allclose(x.grad, [3.0, 30.0])

    def test_broadcast_scalar_seed(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        (x * 2.0).backward(np.array(1.0))
        assert np.allclose(x.grad, 2.0)

    def test_graph_pruned_under_no_grad_inside_module(self):
        from repro.nn import MLP

        mlp = MLP([3, 4, 1], np.random.default_rng(0))
        with no_grad():
            out = mlp(Tensor(np.ones((2, 3))))
        assert not out.requires_grad
