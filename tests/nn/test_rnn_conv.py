"""Tests for the RNN family and the TCN competitor."""

import numpy as np
import pytest

from repro.nn import GRU, LSTM, TCN, Bidirectional, CausalConv1d, Tensor, make_rnn
from repro.nn.gradcheck import gradcheck


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestRNNShapes:
    @pytest.mark.parametrize("kind,width", [
        ("lstm", 8), ("gru", 8), ("bilstm", 16), ("bigru", 16),
    ])
    def test_summary_shapes(self, rng, kind, width):
        enc = make_rnn(kind, input_dim=5, hidden_dim=8, rng=rng)
        out = enc(Tensor(rng.normal(size=(3, 6, 5))))
        assert out.shape == (3, width)
        assert enc.output_dim == width

    def test_return_sequence(self, rng):
        enc = LSTM(5, 8, rng)
        out = enc(Tensor(rng.normal(size=(3, 6, 5))), return_sequence=True)
        assert out.shape == (3, 6, 8)

    def test_bidirectional_sequence_shape(self, rng):
        enc = Bidirectional(GRU(5, 4, rng), GRU(5, 4, rng))
        out = enc(Tensor(rng.normal(size=(2, 6, 5))), return_sequence=True)
        assert out.shape == (2, 6, 8)

    def test_unknown_kind_raises(self, rng):
        with pytest.raises(ValueError):
            make_rnn("transformer", 4, 4, rng)


class TestRNNGradients:
    def test_lstm_gradcheck(self, rng):
        enc = LSTM(3, 4, rng)
        gradcheck(lambda x: enc(x), [rng.normal(size=(2, 4, 3))], atol=1e-4)

    def test_gru_gradcheck(self, rng):
        enc = GRU(3, 4, rng)
        gradcheck(lambda x: enc(x), [rng.normal(size=(2, 4, 3))], atol=1e-4)

    def test_lstm_params_all_get_grads(self, rng):
        enc = LSTM(3, 4, rng)
        enc(Tensor(rng.normal(size=(2, 5, 3)))).sum().backward()
        for name, param in enc.named_parameters():
            assert param.grad is not None, name


class TestRNNSemantics:
    def test_last_step_matters_most_for_fresh_lstm(self, rng):
        """Changing the last input changes output more than the first."""
        enc = LSTM(3, 8, rng)
        x = rng.normal(size=(1, 10, 3))
        base = enc(Tensor(x)).numpy()
        x_last = x.copy()
        x_last[0, -1] += 1.0
        x_first = x.copy()
        x_first[0, 0] += 1.0
        delta_last = np.abs(enc(Tensor(x_last)).numpy() - base).sum()
        delta_first = np.abs(enc(Tensor(x_first)).numpy() - base).sum()
        assert delta_last > delta_first

    def test_bidirectional_sees_both_ends(self, rng):
        enc = Bidirectional(LSTM(3, 8, rng), LSTM(3, 8, rng))
        x = rng.normal(size=(1, 10, 3))
        base = enc(Tensor(x)).numpy()
        x_first = x.copy()
        x_first[0, 0] += 1.0
        delta_first = np.abs(enc(Tensor(x_first)).numpy() - base).sum()
        assert delta_first > 1e-4


class TestCausalConv:
    def test_output_shape_preserves_time(self, rng):
        conv = CausalConv1d(4, 6, kernel_size=3, rng=rng, dilation=2)
        out = conv(Tensor(rng.normal(size=(2, 10, 4))))
        assert out.shape == (2, 10, 6)

    def test_causality_future_does_not_leak(self, rng):
        conv = CausalConv1d(3, 3, kernel_size=3, rng=rng, dilation=1)
        x = rng.normal(size=(1, 8, 3))
        base = conv(Tensor(x)).numpy()
        perturbed = x.copy()
        perturbed[0, 5] += 10.0
        out = conv(Tensor(perturbed)).numpy()
        # Outputs strictly before t=5 are unchanged.
        assert np.allclose(out[0, :5], base[0, :5])
        assert not np.allclose(out[0, 5:], base[0, 5:])

    def test_gradcheck(self, rng):
        conv = CausalConv1d(2, 3, kernel_size=2, rng=rng, dilation=2)
        gradcheck(lambda x: conv(x), [rng.normal(size=(2, 5, 2))], atol=1e-4)

    def test_invalid_args_rejected(self, rng):
        with pytest.raises(ValueError):
            CausalConv1d(2, 3, kernel_size=0, rng=rng)
        with pytest.raises(ValueError):
            CausalConv1d(2, 3, kernel_size=2, rng=rng, dilation=0)


class TestTCN:
    def test_summary_and_sequence_shapes(self, rng):
        tcn = TCN(5, channels=8, depth=3, kernel_size=4, rng=rng)
        tcn.eval()
        x = Tensor(rng.normal(size=(2, 20, 5)))
        assert tcn(x).shape == (2, 8)
        assert tcn(x, return_sequence=True).shape == (2, 20, 8)

    def test_receptive_field_matches_paper_settings(self, rng):
        # Depth 3, kernel 4 covers a 20-length sequence (Table 5 setting).
        tcn = TCN(5, channels=8, depth=3, kernel_size=4, rng=rng)
        assert tcn.receptive_field >= 20
        # Depth 5, kernel 8 covers a 200-length sequence (Table 8 setting).
        tcn_long = TCN(5, channels=8, depth=5, kernel_size=8, rng=rng)
        assert tcn_long.receptive_field >= 200

    def test_causality_of_stack(self, rng):
        tcn = TCN(3, channels=4, depth=2, kernel_size=2, rng=rng)
        tcn.eval()
        x = rng.normal(size=(1, 12, 3))
        base = tcn(Tensor(x), return_sequence=True).numpy()
        perturbed = x.copy()
        perturbed[0, -1] += 5.0
        out = tcn(Tensor(perturbed), return_sequence=True).numpy()
        assert np.allclose(out[0, :-1], base[0, :-1])

    def test_gradients_flow_to_all_blocks(self, rng):
        tcn = TCN(3, channels=4, depth=2, kernel_size=2, rng=rng)
        tcn.eval()
        tcn(Tensor(rng.normal(size=(2, 8, 3)))).sum().backward()
        for name, param in tcn.named_parameters():
            assert param.grad is not None, name
