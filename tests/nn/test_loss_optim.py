"""Tests for losses and optimizers, including convergence on toy problems."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    SGD,
    Adam,
    Linear,
    Tensor,
    bce_with_logits,
    mae_loss,
    mse_loss,
)
from repro.nn.gradcheck import numerical_gradient


class TestBCEWithLogits:
    def test_matches_reference_value(self):
        logits = Tensor(np.array([0.0, 2.0, -2.0]))
        targets = np.array([1.0, 1.0, 0.0])
        loss = bce_with_logits(logits, targets)
        probs = 1 / (1 + np.exp(-logits.data))
        expected = -(targets * np.log(probs) + (1 - targets) * np.log(1 - probs)).mean()
        assert abs(loss.item() - expected) < 1e-12

    def test_gradient_is_sigmoid_minus_target(self):
        x = np.array([0.5, -1.0, 3.0])
        targets = np.array([1.0, 0.0, 1.0])
        logits = Tensor(x, requires_grad=True)
        bce_with_logits(logits, targets).backward()
        expected = (1 / (1 + np.exp(-x)) - targets) / 3
        assert np.allclose(logits.grad, expected)

    def test_extreme_logits_are_stable(self):
        logits = Tensor(np.array([1000.0, -1000.0]), requires_grad=True)
        loss = bce_with_logits(logits, np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.isfinite(logits.grad).all()

    def test_pos_weight_scales_positive_class(self):
        logits = Tensor(np.array([0.0, 0.0]))
        plain = bce_with_logits(logits, np.array([1.0, 0.0]), pos_weight=1.0)
        weighted = bce_with_logits(logits, np.array([1.0, 0.0]), pos_weight=3.0)
        # Only the positive example's contribution triples.
        assert abs(weighted.item() - (plain.item() * 2)) < 1e-9

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(6,))
        targets = (rng.random(6) > 0.5).astype(float)
        logits = Tensor(x, requires_grad=True)
        bce_with_logits(logits, targets).backward()
        numeric = numerical_gradient(
            lambda t: bce_with_logits(t, targets), [x], 0
        )
        assert np.allclose(logits.grad, numeric, atol=1e-6)


class TestRegressionLosses:
    def test_mae_value(self):
        pred = Tensor(np.array([1.0, 2.0, 5.0]))
        assert abs(mae_loss(pred, np.array([1.0, 4.0, 1.0])).item() - 2.0) < 1e-12

    def test_mse_value(self):
        pred = Tensor(np.array([1.0, 3.0]))
        assert abs(mse_loss(pred, np.array([0.0, 1.0])).item() - 2.5) < 1e-12

    def test_mae_gradient_is_sign(self):
        pred = Tensor(np.array([2.0, -3.0]), requires_grad=True)
        mae_loss(pred, np.array([0.0, 0.0])).backward()
        assert np.allclose(pred.grad, np.array([0.5, -0.5]))


class TestOptimizers:
    def _quadratic_descent(self, optimizer_factory) -> float:
        w = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        w.requires_grad = True
        opt = optimizer_factory([w])
        for _ in range(200):
            opt.zero_grad()
            loss = (w * w).sum()
            loss.backward()
            opt.step()
        return float(np.abs(w.data).max())

    def test_sgd_converges_on_quadratic(self):
        assert self._quadratic_descent(lambda p: SGD(p, lr=0.1)) < 1e-3

    def test_sgd_momentum_converges(self):
        assert self._quadratic_descent(lambda p: SGD(p, lr=0.05, momentum=0.9)) < 1e-3

    def test_adam_converges_on_quadratic(self):
        assert self._quadratic_descent(lambda p: Adam(p, lr=0.3)) < 1e-3

    def test_weight_decay_shrinks_unused_weights(self):
        w = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([w], lr=0.1, weight_decay=0.5)
        # Gradient of the data loss is zero; decay alone should shrink w.
        for _ in range(10):
            opt.zero_grad()
            (w * 0.0).sum().backward()
            opt.step()
        assert abs(float(w.data[0])) < 1.0

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)

    def test_skips_frozen_params(self):
        rng = np.random.default_rng(0)
        layer = Linear(3, 2, rng)
        layer.weight.requires_grad = False
        opt = Adam(layer.parameters(), lr=0.1)
        assert all(p is not layer.weight for p in opt.params)


class TestEndToEndLearning:
    def test_mlp_solves_xor(self):
        """The classic non-linear sanity check for the whole stack."""
        rng = np.random.default_rng(3)
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0.0, 1.0, 1.0, 0.0])
        mlp = MLP([2, 16, 1], rng)
        opt = Adam(mlp.parameters(), lr=0.05)
        for _ in range(400):
            opt.zero_grad()
            logits = mlp(Tensor(x)).reshape(4)
            loss = bce_with_logits(logits, y)
            loss.backward()
            opt.step()
        probs = 1 / (1 + np.exp(-mlp(Tensor(x)).numpy().reshape(4)))
        assert ((probs > 0.5) == y.astype(bool)).all()


class TestGradClipping:
    def test_clip_reduces_large_norm(self):
        from repro.nn.optim import clip_grad_norm

        w = Tensor(np.zeros(4), requires_grad=True)
        w.grad = np.full(4, 10.0)
        norm = clip_grad_norm([w], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0, rel=1e-6)

    def test_small_gradients_untouched(self):
        from repro.nn.optim import clip_grad_norm

        w = Tensor(np.zeros(2), requires_grad=True)
        w.grad = np.array([0.1, 0.1])
        clip_grad_norm([w], max_norm=5.0)
        assert np.allclose(w.grad, [0.1, 0.1])

    def test_skips_gradless_params(self):
        from repro.nn.optim import clip_grad_norm

        w = Tensor(np.zeros(2), requires_grad=True)
        assert clip_grad_norm([w], max_norm=1.0) == 0.0

    def test_invalid_max_norm(self):
        from repro.nn.optim import clip_grad_norm

        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)
