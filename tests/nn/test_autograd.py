"""Gradient checks for every Tensor operation against finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, concat, embedding_lookup, no_grad, pad_time_left, stack
from repro.nn.gradcheck import gradcheck

RNG = np.random.default_rng(1234)


def _rand(*shape):
    return RNG.normal(size=shape)


class TestElementwiseOps:
    def test_add_broadcast(self):
        gradcheck(lambda a, b: a + b, [_rand(3, 4), _rand(4)])

    def test_add_scalar(self):
        gradcheck(lambda a: a + 2.5, [_rand(3, 2)])

    def test_sub(self):
        gradcheck(lambda a, b: a - b, [_rand(2, 3), _rand(2, 3)])

    def test_rsub(self):
        gradcheck(lambda a: 1.0 - a, [_rand(5)])

    def test_mul_broadcast(self):
        gradcheck(lambda a, b: a * b, [_rand(2, 3, 4), _rand(3, 4)])

    def test_div(self):
        gradcheck(lambda a, b: a / b, [_rand(3, 3), np.abs(_rand(3, 3)) + 1.0])

    def test_rdiv(self):
        gradcheck(lambda a: 2.0 / a, [np.abs(_rand(4)) + 1.0])

    def test_neg(self):
        gradcheck(lambda a: -a, [_rand(3)])

    def test_pow(self):
        gradcheck(lambda a: a**3, [_rand(4, 2)])

    def test_exp(self):
        gradcheck(lambda a: a.exp(), [_rand(3, 3)])

    def test_log(self):
        gradcheck(lambda a: a.log(), [np.abs(_rand(3, 3)) + 0.5])

    def test_tanh(self):
        gradcheck(lambda a: a.tanh(), [_rand(4, 4)])

    def test_sigmoid(self):
        gradcheck(lambda a: a.sigmoid(), [_rand(4, 4)])

    def test_relu(self):
        # Keep values away from the kink where the derivative is undefined.
        data = _rand(4, 4)
        data[np.abs(data) < 0.1] += 0.3
        gradcheck(lambda a: a.relu(), [data])

    def test_abs(self):
        data = _rand(4, 4)
        data[np.abs(data) < 0.1] += 0.3
        gradcheck(lambda a: a.abs(), [data])

    def test_softmax(self):
        gradcheck(lambda a: a.softmax(axis=-1), [_rand(3, 5)])

    def test_softmax_middle_axis(self):
        gradcheck(lambda a: a.softmax(axis=1), [_rand(2, 4, 3)])


class TestMatmul:
    def test_2d_2d(self):
        gradcheck(lambda a, b: a @ b, [_rand(3, 4), _rand(4, 5)])

    def test_batched_3d_2d(self):
        gradcheck(lambda a, b: a @ b, [_rand(2, 3, 4), _rand(4, 5)])

    def test_batched_3d_3d(self):
        gradcheck(lambda a, b: a @ b, [_rand(2, 3, 4), _rand(2, 4, 5)])

    def test_vector_matrix(self):
        gradcheck(lambda a, b: a @ b, [_rand(4), _rand(4, 3)])

    def test_matrix_vector(self):
        gradcheck(lambda a, b: a @ b, [_rand(3, 4), _rand(4)])

    def test_chain(self):
        gradcheck(lambda a, b, c: (a @ b) @ c, [_rand(2, 3), _rand(3, 4), _rand(4, 2)])


class TestReductionsAndShape:
    def test_sum_all(self):
        gradcheck(lambda a: a.sum(), [_rand(3, 4)])

    def test_sum_axis_keepdims(self):
        gradcheck(lambda a: a.sum(axis=1, keepdims=True), [_rand(3, 4, 2)])

    def test_sum_negative_axis(self):
        gradcheck(lambda a: a.sum(axis=-1), [_rand(3, 4)])

    def test_mean(self):
        gradcheck(lambda a: a.mean(axis=0), [_rand(4, 3)])

    def test_reshape(self):
        gradcheck(lambda a: a.reshape(6, 2), [_rand(3, 4)])

    def test_transpose(self):
        gradcheck(lambda a: a.transpose(1, 0, 2), [_rand(2, 3, 4)])

    def test_swapaxes(self):
        gradcheck(lambda a: a.swapaxes(0, 2), [_rand(2, 3, 4)])

    def test_flip(self):
        gradcheck(lambda a: a.flip(axis=1), [_rand(2, 5)])

    def test_getitem_slice(self):
        gradcheck(lambda a: a[:, 1:3], [_rand(3, 5)])

    def test_getitem_int(self):
        gradcheck(lambda a: a[1], [_rand(3, 5)])

    def test_getitem_fancy(self):
        idx = np.array([0, 2, 2])
        gradcheck(lambda a: a[:, :, idx], [_rand(2, 3, 4)])

    def test_concat(self):
        gradcheck(lambda a, b: concat([a, b], axis=1), [_rand(2, 3), _rand(2, 4)])

    def test_stack(self):
        gradcheck(lambda a, b: stack([a, b], axis=1), [_rand(2, 3), _rand(2, 3)])

    def test_pad_time_left(self):
        gradcheck(lambda a: pad_time_left(a, 2), [_rand(2, 4, 3)])


class TestGraphSemantics:
    def test_reused_tensor_accumulates(self):
        gradcheck(lambda a: a * a + a, [_rand(3)])

    def test_diamond_graph(self):
        def fn(a):
            b = a * 2.0
            c = a + 1.0
            return b * c

        gradcheck(fn, [_rand(4)])

    def test_no_grad_blocks_graph(self):
        x = Tensor(_rand(3), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_backward_accumulates_across_calls(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 2.0).sum().backward()
        assert np.allclose(x.grad, 4.0 * np.ones(3))

    def test_backward_on_constant_raises(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_detach_cuts_graph(self):
        x = Tensor(_rand(3), requires_grad=True)
        y = x.detach() * 3.0
        assert not y.requires_grad

    def test_embedding_lookup_repeated_rows(self):
        weight = np.arange(12, dtype=float).reshape(4, 3)
        idx = np.array([1, 1, 3])
        w = Tensor(weight, requires_grad=True)
        out = embedding_lookup(w, idx)
        out.sum().backward()
        expected = np.zeros((4, 3))
        expected[1] = 2.0
        expected[3] = 1.0
        assert np.allclose(w.grad, expected)


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=5),
    cols=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_mul_sum_gradient_is_other_operand(rows, cols, seed):
    """d/da sum(a*b) == b for any shapes — a broadcasting-free identity."""
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
    b = rng.normal(size=(rows, cols))
    (a * Tensor(b)).sum().backward()
    assert np.allclose(a.grad, b)


@settings(max_examples=25, deadline=None)
@given(
    batch=st.integers(min_value=1, max_value=4),
    n=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_softmax_rows_sum_to_one(batch, n, seed):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(batch, n)) * 3.0)
    out = x.softmax(axis=-1).numpy()
    assert np.allclose(out.sum(axis=-1), 1.0)
    assert (out >= 0).all()
