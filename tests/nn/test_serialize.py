"""Tests for model save/load round-trips."""

import numpy as np
import pytest

from repro.nn import MLP, Tensor
from repro.nn.serialize import archive_summary, load_module, save_module


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestSerialization:
    def test_roundtrip_preserves_outputs(self, rng, tmp_path):
        model = MLP([4, 8, 1], rng)
        path = tmp_path / "model.npz"
        save_module(model, path)
        clone = MLP([4, 8, 1], np.random.default_rng(99))
        load_module(clone, path)
        x = Tensor(rng.normal(size=(3, 4)))
        assert np.allclose(model(x).numpy(), clone(x).numpy())

    def test_manifest_contents(self, rng, tmp_path):
        model = MLP([4, 8, 1], rng)
        path = tmp_path / "model.npz"
        save_module(model, path)
        manifest = archive_summary(path)
        assert manifest["n_parameters"] == model.num_parameters()
        assert set(manifest["names"]) == set(model.state_dict())

    def test_architecture_mismatch_rejected(self, rng, tmp_path):
        model = MLP([4, 8, 1], rng)
        path = tmp_path / "model.npz"
        save_module(model, path)
        wrong = MLP([4, 16, 1], np.random.default_rng(0))
        with pytest.raises((KeyError, ValueError)):
            load_module(wrong, path)

    def test_non_archive_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError):
            archive_summary(path)

    def test_creates_parent_dirs(self, rng, tmp_path):
        model = MLP([2, 2, 1], rng)
        nested = tmp_path / "a" / "b" / "model.npz"
        save_module(model, nested)
        assert nested.exists()
