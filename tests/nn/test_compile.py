"""Parity suite for the compiled no-grad inference path (repro.nn.compile).

Compiled plans must reproduce the eager eval-mode forward for every
supported ranker architecture, across seeds and across masked/padded
sequence batches — ``allclose`` at rtol 1e-6 by contract, and in practice
bit-for-bit (asserted separately so a regression to merely-close is
visible).
"""

import numpy as np
import pytest

from repro.core import Batch, SNNConfig, make_model
from repro.nn import (
    CompileError,
    Tensor,
    compile_inference,
    get_compiled,
    no_grad,
    prewarm,
    run_compiled,
    stable_sigmoid,
    synthetic_batch,
)
from repro.nn.module import Module

CONFIG = SNNConfig(
    n_channels=5, n_coin_ids=13, n_numeric=7, seq_len=6, n_seq_numeric=6
)
PAD_ID = CONFIG.n_coin_ids - 1
DEEP_MODELS = ("snn", "dnn", "lstm", "bilstm", "gru", "bigru", "tcn")


def random_batch(rng: np.random.Generator, batch_size: int = 17,
                 padded: bool = False) -> Batch:
    """A random model batch; ``padded`` left-pads variable-length histories."""
    seq_ids = rng.integers(0, PAD_ID, size=(batch_size, CONFIG.seq_len))
    mask = np.ones((batch_size, CONFIG.seq_len))
    if padded:
        # Random history lengths, including fully-empty histories.
        for i in range(batch_size):
            real = rng.integers(0, CONFIG.seq_len + 1)
            mask[i, real:] = 0.0
            seq_ids[i, real:] = PAD_ID
    return Batch(
        channel_idx=rng.integers(0, CONFIG.n_channels, size=batch_size),
        coin_idx=rng.integers(0, PAD_ID, size=batch_size),
        numeric=rng.normal(size=(batch_size, CONFIG.n_numeric)),
        seq_coin_idx=seq_ids,
        seq_numeric=rng.normal(
            size=(batch_size, CONFIG.seq_len, CONFIG.n_seq_numeric)
        ) * mask[:, :, None],
        seq_mask=mask,
        label=np.zeros(batch_size),
    )


def eager_logits(model, batch) -> np.ndarray:
    model.eval()
    with no_grad():
        return model(batch).numpy()


@pytest.mark.parametrize("name", DEEP_MODELS)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_compiled_matches_eager(name, seed):
    model = make_model(name, CONFIG, seed=seed)
    plan = compile_inference(model)
    rng = np.random.default_rng(1000 + seed)
    for padded in (False, True):
        batch = random_batch(rng, padded=padded)
        eager = eager_logits(model, batch)
        compiled = plan.logits(batch)
        assert compiled.shape == eager.shape
        assert np.allclose(compiled, eager, rtol=1e-6, atol=1e-9)


@pytest.mark.parametrize("name", DEEP_MODELS)
def test_compiled_is_bitwise_exact(name):
    model = make_model(name, CONFIG, seed=3)
    plan = compile_inference(model)
    batch = random_batch(np.random.default_rng(7), padded=True)
    assert np.array_equal(plan.logits(batch), eager_logits(model, batch))


def test_probabilities_use_stable_sigmoid():
    model = make_model("snn", CONFIG, seed=0)
    plan = compile_inference(model)
    batch = random_batch(np.random.default_rng(2))
    probs = plan.probabilities(batch)
    expected = stable_sigmoid(eager_logits(model, batch))
    assert np.array_equal(probs, expected)
    assert ((probs > 0) & (probs < 1)).all()


def test_varying_batch_sizes_reuse_one_plan():
    model = make_model("snn", CONFIG, seed=0)
    plan = compile_inference(model)
    rng = np.random.default_rng(5)
    for batch_size in (1, 4, 33, 4, 33):
        batch = random_batch(rng, batch_size=batch_size, padded=True)
        assert np.array_equal(plan.logits(batch), eager_logits(model, batch))


def test_plan_tracks_parameter_updates():
    """Plans read parameters live, so training between calls is safe."""
    model = make_model("snn", CONFIG, seed=0)
    plan = compile_inference(model)
    batch = random_batch(np.random.default_rng(3))
    before = plan.logits(batch).copy()
    for param in model.parameters():
        param.data += 0.05
    after = plan.logits(batch)
    assert not np.allclose(before, after)
    assert np.array_equal(after, eager_logits(model, batch))


def test_verification_runs_on_sample_batch():
    model = make_model("dnn", CONFIG, seed=0)
    batch = random_batch(np.random.default_rng(11))
    plan = compile_inference(model, sample_batch=batch)
    assert np.array_equal(plan.logits(batch), eager_logits(model, batch))


def test_get_compiled_memoizes_per_model():
    model = make_model("gru", CONFIG, seed=0)
    assert get_compiled(model) is get_compiled(model)
    other = make_model("gru", CONFIG, seed=0)
    assert get_compiled(other) is not get_compiled(model)


def test_swapped_submodule_is_detected_and_retraced():
    """Replacing a traced submodule must not silently score with old weights."""
    from repro.nn import PositionalAttention

    model = make_model("snn", CONFIG, seed=0)
    batch = random_batch(np.random.default_rng(4), padded=True)
    plan = get_compiled(model)
    assert np.array_equal(plan.logits(batch), eager_logits(model, batch))
    # Swap the attention layer (the ablation-study pattern).
    rng = np.random.default_rng(9)
    model.attention = PositionalAttention(
        CONFIG.seq_len, CONFIG.n_seq_features,
        channels=CONFIG.attention_channels, rng=rng,
    )
    model.attention.logits.data += rng.normal(size=model.attention.logits.shape)
    assert plan.stale()
    with pytest.raises(CompileError):
        plan.logits(batch)
    # run_compiled retraces once and matches the new eager forward.
    out = run_compiled(model, batch)
    assert out is not None
    assert np.array_equal(out, eager_logits(model, batch))


def test_prewarm_returns_verified_plan():
    model = make_model("bigru", CONFIG, seed=0)
    plan = prewarm(model)
    assert plan is not None
    assert plan is get_compiled(model)
    batch = synthetic_batch(CONFIG)
    assert np.array_equal(plan.logits(batch), eager_logits(model, batch))


def test_unsupported_module_raises_and_run_compiled_falls_back():
    class Opaque(Module):
        def forward(self, batch):
            return Tensor(np.zeros(len(batch)))

    model = Opaque()
    with pytest.raises(CompileError):
        compile_inference(model)
    assert get_compiled(model) is None
    assert run_compiled(model, random_batch(np.random.default_rng(0))) is None
