"""Tests for Linear/Embedding/Dropout/MLP and the Module container."""

import numpy as np
import pytest

from repro.nn import MLP, Adam, Dropout, Embedding, Linear, Module, Sequential, Tensor
from repro.nn.gradcheck import gradcheck


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(5, 3, rng)
        out = layer(Tensor(rng.normal(size=(7, 5))))
        assert out.shape == (7, 3)

    def test_batched_3d_input(self, rng):
        layer = Linear(5, 3, rng)
        out = layer(Tensor(rng.normal(size=(2, 7, 5))))
        assert out.shape == (2, 7, 3)

    def test_no_bias(self, rng):
        layer = Linear(5, 3, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradcheck_through_layer(self, rng):
        layer = Linear(4, 2, rng)
        gradcheck(lambda x: layer(x), [rng.normal(size=(3, 4))])

    def test_parameters_receive_gradients(self, rng):
        layer = Linear(4, 2, rng)
        out = layer(Tensor(rng.normal(size=(3, 4))))
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        assert layer.weight.grad.shape == (4, 2)


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(10, 4, rng)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_out_of_range_raises(self, rng):
        emb = Embedding(10, 4, rng)
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_frozen_embedding_gets_no_grad(self, rng):
        emb = Embedding(10, 4, rng, frozen=True)
        out = emb(np.array([1, 2]))
        assert not out.requires_grad

    def test_from_pretrained_preserves_vectors(self):
        vectors = np.arange(20, dtype=float).reshape(5, 4)
        emb = Embedding.from_pretrained(vectors)
        out = emb(np.array([2]))
        assert np.allclose(out.numpy()[0], vectors[2])

    def test_trainable_embedding_learns(self, rng):
        emb = Embedding(3, 2, rng)
        opt = Adam(emb.parameters(), lr=0.1)
        target = np.array([[1.0, -1.0]])
        for _ in range(100):
            opt.zero_grad()
            out = emb(np.array([0]))
            loss = ((out - Tensor(target)) ** 2).sum()
            loss.backward()
            opt.step()
        assert np.allclose(emb.weight.data[0], target[0], atol=1e-2)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        drop = Dropout(0.5, rng=rng)
        drop.eval()
        x = Tensor(rng.normal(size=(10, 10)))
        assert np.allclose(drop(x).numpy(), x.numpy())

    def test_train_mode_zeroes_and_scales(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((200, 200)))
        out = drop(x).numpy()
        zero_fraction = float((out == 0).mean())
        assert 0.4 < zero_fraction < 0.6
        # Inverted dropout keeps the expectation at 1.
        assert abs(out.mean() - 1.0) < 0.05

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestMLPAndModule:
    def test_mlp_shapes(self, rng):
        mlp = MLP([6, 8, 4, 1], rng)
        out = mlp(Tensor(rng.normal(size=(5, 6))))
        assert out.shape == (5, 1)

    def test_mlp_requires_two_dims(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_named_parameters_unique_and_complete(self, rng):
        mlp = MLP([6, 8, 1], rng)
        names = [name for name, _ in mlp.named_parameters()]
        assert len(names) == len(set(names)) == 4  # 2 layers x (W, b)

    def test_state_dict_roundtrip(self, rng):
        mlp = MLP([6, 8, 1], rng)
        state = mlp.state_dict()
        clone = MLP([6, 8, 1], np.random.default_rng(123))
        clone.load_state_dict(state)
        x = Tensor(rng.normal(size=(3, 6)))
        assert np.allclose(mlp(x).numpy(), clone(x).numpy())

    def test_state_dict_rejects_mismatch(self, rng):
        mlp = MLP([6, 8, 1], rng)
        with pytest.raises(KeyError):
            mlp.load_state_dict({"bogus": np.zeros(3)})

    def test_train_eval_propagates(self, rng):
        seq = Sequential(Linear(4, 4, rng), Dropout(0.3))
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_zero_grad_clears(self, rng):
        mlp = MLP([4, 4, 1], rng)
        mlp(Tensor(rng.normal(size=(2, 4)))).sum().backward()
        assert any(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())

    def test_num_parameters_counts_scalars(self, rng):
        mlp = MLP([4, 3, 1], rng)
        assert mlp.num_parameters() == 4 * 3 + 3 + 3 * 1 + 1
