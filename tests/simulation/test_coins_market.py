"""Tests for the coin universe and market simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import CoinUniverse, MarketSimulator, PumpProfile
from repro.utils import ReproConfig

CFG = ReproConfig.tiny()


@pytest.fixture(scope="module")
def universe():
    return CoinUniverse.generate(CFG)


@pytest.fixture(scope="module")
def market(universe):
    return MarketSimulator(universe)


class TestCoinUniverse:
    def test_deterministic(self):
        u1 = CoinUniverse.generate(CFG)
        u2 = CoinUniverse.generate(CFG)
        assert u1.symbols == u2.symbols
        assert np.allclose(u1.market_cap, u2.market_cap)

    def test_symbols_unique(self, universe):
        assert len(set(universe.symbols)) == universe.n_coins

    def test_majors_present(self, universe):
        assert universe.symbols[0] == "BTC"
        assert universe.symbols[1] == "ETH"

    def test_cap_decays_with_rank(self, universe):
        cap = universe.market_cap
        top = np.log(cap[: 20]).mean()
        bottom = np.log(cap[-20:]).mean()
        assert top > bottom

    def test_alexa_grows_with_rank(self, universe):
        alexa = universe.alexa_rank
        assert np.log(alexa[:20]).mean() < np.log(alexa[-20:]).mean()

    def test_all_stats_positive(self, universe):
        for arr in (universe.market_cap, universe.alexa_rank,
                    universe.reddit_subscribers, universe.twitter_followers,
                    universe.base_price):
            assert (arr > 0).all()

    def test_listings_grow_over_time(self, universe):
        early = universe.listed_coins(0, 10.0)
        late = universe.listed_coins(0, CFG.horizon_hours - 1.0)
        assert set(early) <= set(late)
        assert len(late) > len(early)

    def test_majors_listed_everywhere(self, universe):
        for e in range(CFG.n_exchanges):
            assert universe.is_listed(0, e, 0.0)

    def test_binance_lists_most(self, universe):
        h = CFG.horizon_hours - 1.0
        binance = len(universe.listed_coins(0, h))
        others = [len(universe.listed_coins(e, h)) for e in range(1, CFG.n_exchanges)]
        assert binance >= max(others)

    def test_social_score_standardized(self, universe):
        score = universe.social_score()
        assert abs(score.mean()) < 1e-9
        assert abs(score.std() - 1.0) < 1e-6


class TestMarketBase:
    def test_prices_positive_and_deterministic(self, market):
        ids = np.arange(5)
        hours = np.full(5, 123.0)
        p1 = market.close_price(ids, hours)
        p2 = market.close_price(ids, hours)
        assert (p1 > 0).all()
        assert np.allclose(p1, p2)

    def test_overlapping_windows_consistent(self, market):
        """The same (coin, hour) query gives identical answers regardless of
        which window asked — the property motivating the hash RNG."""
        a = market.close_price(np.full(10, 7), np.arange(100.0, 110.0))
        b = market.close_price(np.full(5, 7), np.arange(105.0, 110.0))
        assert np.allclose(a[5:], b)

    def test_volume_positive(self, market):
        v = market.hourly_volume(np.arange(8), np.full(8, 500.0))
        assert (v > 0).all()

    def test_mood_is_continuous(self, market):
        hours = np.linspace(1000.0, 1048.0, 200)
        mood = market.market_mood(hours)
        assert np.abs(np.diff(mood)).max() < 0.5

    def test_ohlc_invariants(self, market):
        bars = market.ohlcv_hourly(4, start_hour=200, n_hours=48)
        opens, high, low, close, volume = bars.T
        assert (low <= np.minimum(opens, close) + 1e-12).all()
        assert (high >= np.maximum(opens, close) - 1e-12).all()
        assert (volume > 0).all()

    def test_ohlc_open_equals_previous_close(self, market):
        bars = market.ohlcv_hourly(4, start_hour=300, n_hours=10)
        assert np.allclose(bars[1:, 0], bars[:-1, 3])

    def test_invalid_bars_args(self, market):
        with pytest.raises(ValueError):
            market.ohlcv_hourly(0, 10, 0)


def _attach_one_event(universe, coin_id=25, time=5000.0, peak=np.log(2.5)):
    market = MarketSimulator(universe)
    profile = PumpProfile(
        time=time, accum_log=0.095, peak_log=peak, settle_log=-0.02,
        dump_tau=1.5, vip_times=(-5.0,), vip_sizes=(0.02,),
        volume_peak_log=3.5,
    )

    class _Event:
        pass

    event = _Event()
    event.coin_id = coin_id
    event.profile = profile
    market.attach_events([event])
    return market, profile


class TestPumpOverlays:
    def test_accumulation_lifts_price_before_pump(self, universe):
        market, _ = _attach_one_event(universe)
        clean = MarketSimulator(universe)
        lifted = market.close_price(np.array([25]), np.array([4999.0]))[0]
        base = clean.close_price(np.array([25]), np.array([4999.0]))[0]
        assert lifted > base * 1.05

    def test_pump_spike_at_peak(self, universe):
        market, profile = _attach_one_event(universe)
        pre = market.close_price(np.array([25]), np.array([4999.0]))[0]
        peak = market.minute_close(25, 5000.0, [2])[0]
        assert peak / pre > 1.8  # peak_log = log 2.5 on top of accumulation

    def test_dump_settles_at_or_below_start(self, universe):
        market, _ = _attach_one_event(universe)
        clean = MarketSimulator(universe)
        after = market.close_price(np.array([25]), np.array([5030.0]))[0]
        base = clean.close_price(np.array([25]), np.array([5030.0]))[0]
        assert after < base * 1.05

    def test_window_returns_peak_near_60_on_average(self, universe):
        """Figure 4(c) is an average over hundreds of events; per-event noise
        and seasonality can flip single comparisons, so we average too."""
        market = MarketSimulator(universe)
        coins = list(range(10, 40))
        times = [3000.0 + 177.0 * i for i in range(len(coins))]
        events = []
        for coin, time in zip(coins, times):
            profile = PumpProfile(
                time=time, accum_log=0.095, peak_log=np.log(2.0),
                settle_log=-0.02, dump_tau=1.5, vip_times=(-5.0,),
                vip_sizes=(0.02,), volume_peak_log=3.5,
            )

            class _Event:
                pass

            event = _Event()
            event.coin_id = coin
            event.profile = profile
            events.append(event)
        market.attach_events(events)
        mean_returns = {}
        for x in (1, 3, 6, 12, 24, 48, 60, 72):
            vals = [
                float(market.window_return(np.array([c]), t, x)[0])
                for c, t in zip(coins, times)
            ]
            mean_returns[x] = float(np.mean(vals))
        best = max(mean_returns, key=mean_returns.get)
        assert best in (48, 60)
        assert mean_returns[60] > 0.05
        # Figure 4(c): the 72h window reads slightly lower than the 60h one.
        assert mean_returns[72] < mean_returns[60]

    def test_returns_monotone_increasing_to_60(self, universe):
        market, _ = _attach_one_event(universe)
        r = [float(market.window_return(np.array([25]), 5000.0, x)[0])
             for x in (3, 12, 24, 48, 60)]
        assert r == sorted(r)

    def test_volume_onset_near_57h(self, universe):
        market, _ = _attach_one_event(universe)
        clean = MarketSimulator(universe)
        hours = np.arange(4900.0, 5000.0)
        ratio = market.hourly_volume(np.full(100, 25), hours) / clean.hourly_volume(
            np.full(100, 25), hours
        )
        # Well before the onset (>70h out) the overlay is exactly zero (the
        # two simulators share noise), and within the last 20 hours the
        # frequent-trading ramp clearly elevates volume.
        assert ratio[:30].mean() < 1.1
        assert ratio[-20:].mean() > 1.3

    def test_pump_volume_spike(self, universe):
        market, _ = _attach_one_event(universe)
        spike = market.hourly_volume(np.array([25]), np.array([5000.1]))[0]
        baseline = market.hourly_volume(np.array([25]), np.array([4800.0]))[0]
        assert spike / baseline > 8.0

    def test_unaffected_coin_untouched(self, universe):
        market, _ = _attach_one_event(universe, coin_id=25)
        clean = MarketSimulator(universe)
        a = market.close_price(np.array([30]), np.array([5000.0]))
        b = clean.close_price(np.array([30]), np.array([5000.0]))
        assert np.allclose(a, b)

    def test_random_windows_have_near_zero_return(self, universe):
        """Averaged over many coins *and* times, 60h returns center on zero.

        A single shared timestamp would leave the market-wide seasonal term
        in the mean, so sample (coin, hour) pairs independently.
        """
        market = MarketSimulator(universe)
        rng = np.random.default_rng(0)
        ids = rng.integers(3, universe.n_coins, size=400)
        hours = rng.uniform(1000, CFG.horizon_hours - 100, size=400)
        rets = np.array([
            float(market.window_return(np.array([c]), h, 60)[0])
            for c, h in zip(ids, hours)
        ])
        assert abs(float(np.mean(rets))) < 0.02


@settings(max_examples=20, deadline=None)
@given(
    coin=st.integers(min_value=0, max_value=CFG.n_coins - 1),
    hour=st.integers(min_value=100, max_value=CFG.horizon_hours - 100),
)
def test_property_prices_finite_everywhere(coin, hour):
    universe = CoinUniverse.generate(CFG)
    market = MarketSimulator(universe)
    p = market.close_price(np.array([coin]), np.array([float(hour)]))
    v = market.hourly_volume(np.array([coin]), np.array([float(hour)]))
    assert np.isfinite(p).all() and (p > 0).all()
    assert np.isfinite(v).all() and (v > 0).all()
