"""Tests for channels, events, messages and the world facade."""

import numpy as np
import pytest

from repro.simulation import (
    ChannelPopulation,
    CoinUniverse,
    EventScheduler,
    MarketSimulator,
    MessageGenerator,
    PUMP_KINDS,
    SyntheticWorld,
)
from repro.utils import ReproConfig

CFG = ReproConfig.tiny()


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld.generate(CFG)


class TestChannels:
    def test_deterministic(self, world):
        again = ChannelPopulation.generate(CFG, world.coins)
        assert [c.channel_id for c in again.pump_channels] == [
            c.channel_id for c in world.channels.pump_channels
        ]

    def test_channel_ids_unique(self, world):
        ids = world.channels.all_channel_ids()
        assert len(ids) == len(set(ids))

    def test_seed_list_contains_deleted_channels(self, world):
        seeds_all = world.channels.seed_channel_ids(include_deleted=True)
        seeds_alive = world.channels.seed_channel_ids(include_deleted=False)
        assert len(seeds_alive) <= len(seeds_all)

    def test_exchange_weights_are_distributions(self, world):
        for channel in world.channels.pump_channels:
            assert channel.exchange_weights.shape == (CFG.n_exchanges,)
            assert abs(channel.exchange_weights.sum() - 1.0) < 1e-9

    def test_invitation_graph_covers_alive_channels(self, world):
        graph = world.channels.invitations
        alive = {c.channel_id for c in world.channels.alive_pump_channels()}
        nodes = set(graph.nodes)
        assert alive <= nodes

    def test_bigger_channels_prefer_bigger_caps(self, world):
        chans = world.channels.pump_channels
        subs = np.array([c.subscribers for c in chans], dtype=float)
        centers = np.array([c.band_center for c in chans])
        # Rank correlation between size and band center must be negative
        # (low rank index = big cap).
        order_subs = np.argsort(np.argsort(subs)).astype(float)
        order_cent = np.argsort(np.argsort(centers)).astype(float)
        corr = np.corrcoef(order_subs, order_cent)[0, 1]
        assert corr < 0.1


class TestEvents:
    def test_events_sorted_and_ids_unique(self, world):
        times = [e.time for e in world.events.events]
        assert times == sorted(times)
        ids = [e.event_id for e in world.events.events]
        assert len(ids) == len(set(ids))

    def test_pumped_coins_are_listed_and_not_majors(self, world):
        for event in world.events.events:
            assert event.coin_id >= 3
            assert world.coins.is_listed(event.coin_id, event.exchange_id, event.time)

    def test_exchange_mix_is_binance_heavy(self, world):
        exchanges = [e.exchange_id for e in world.events.events]
        share = exchanges.count(0) / len(exchanges)
        assert share > 0.4

    def test_multi_channel_events_exist(self, world):
        counts = [e.n_channels for e in world.events.events]
        assert max(counts) >= 2
        assert 1.2 < np.mean(counts) < 4.0

    def test_repump_rate_substantial(self, world):
        seen = set()
        repumps = 0
        for event in world.events.events:
            if event.coin_id in seen:
                repumps += 1
            seen.add(event.coin_id)
        assert repumps / len(world.events.events) > 0.25

    def test_by_channel_is_chronological(self, world):
        for history in world.events.by_channel().values():
            times = [e.time for e in history]
            assert times == sorted(times)

    def test_organizer_is_first_channel(self, world):
        pump_ids = {c.channel_id for c in world.channels.pump_channels}
        for event in world.events.events:
            assert event.channel_ids[0] in pump_ids

    def test_intra_channel_homogeneity(self, world):
        """Per-channel spread of log cap is below the global spread (A3)."""
        caps = world.coins.market_cap
        global_spread = np.std(
            [np.log(caps[e.coin_id]) for e in world.events.events]
        )
        spreads = []
        for history in world.events.by_channel().values():
            if len(history) >= 5:
                spreads.append(np.std([np.log(caps[e.coin_id]) for e in history]))
        assert spreads, "no channel with enough history"
        assert np.mean(spreads) < global_spread


class TestMessages:
    def test_every_event_has_release_and_announcement(self, world):
        kinds_by_event: dict[int, set] = {}
        for message in world.messages:
            if message.event_id >= 0:
                kinds_by_event.setdefault(message.event_id, set()).add(message.kind)
        for event in world.events.events:
            kinds = kinds_by_event[event.event_id]
            assert "release" in kinds
            assert "announcement" in kinds

    def test_pump_message_label_matches_kinds(self, world):
        for message in world.messages:
            assert message.is_pump_message == (message.kind in PUMP_KINDS)

    def test_messages_sorted_by_time(self, world):
        times = [m.time for m in world.messages]
        assert times == sorted(times)

    def test_release_text_contains_symbol_or_image(self, world):
        symbol_set = set(world.coins.symbols)
        for message in world.messages:
            if message.kind == "release":
                stripped = message.text.replace("Coin: ", "")
                assert stripped in symbol_set or "image" in stripped

    def test_invites_reference_real_channels(self, world):
        import re

        all_ids = set(world.channels.all_channel_ids())
        for message in world.messages:
            if message.kind == "invite":
                target = int(re.search(r"joinchat/(\d+)", message.text).group(1))
                assert target in all_ids

    def test_btc_stream_density_and_kinds(self, world):
        gen = world.message_generator()
        stream = gen.generate_btc_stream(100, 200, per_hour=3.0)
        assert 100 < len(stream) < 600
        assert {m.kind for m in stream} <= {"sentiment", "generic"}

    def test_btc_stream_rejects_bad_range(self, world):
        with pytest.raises(ValueError):
            world.message_generator().generate_btc_stream(10, 10)

    def test_sentiment_tracks_mood(self, world):
        """Positive-bank messages dominate when the mood is high."""
        from repro.text import SentimentAnalyzer

        gen = world.message_generator()
        stream = gen.generate_btc_stream(0, CFG.forecast_hours, per_hour=2.0)
        analyzer = SentimentAnalyzer()
        mood = world.market.market_mood(np.array([m.time for m in stream]))
        compound = np.array([analyzer.score(m.text).compound for m in stream])
        mask = np.abs(mood) > 1.0
        corr = np.corrcoef(mood[mask], compound[mask])[0, 1]
        assert corr > 0.3


class TestWorldFacade:
    def test_summary_shape(self, world):
        summary = world.summary()
        assert summary["events"] > 0
        assert summary["samples"] >= summary["events"]
        assert summary["coins"] <= summary["samples"]
        assert summary["messages"] == len(world.messages)

    def test_deterministic_world(self):
        w1 = SyntheticWorld.generate(CFG)
        w2 = SyntheticWorld.generate(CFG)
        assert [e.coin_id for e in w1.events.events] == [
            e.coin_id for e in w2.events.events
        ]
        assert [m.text for m in w1.messages[:200]] == [
            m.text for m in w2.messages[:200]
        ]

    def test_different_seeds_differ(self):
        w1 = SyntheticWorld.generate(CFG)
        w2 = SyntheticWorld.generate(CFG.with_(seed=CFG.seed + 1))
        assert [e.coin_id for e in w1.events.events] != [
            e.coin_id for e in w2.events.events
        ]

    def test_corpus_matches_messages(self, world):
        corpus = world.telegram_corpus()
        assert len(corpus) == len(world.messages)

    def test_messages_by_channel_complete(self, world):
        total = sum(len(v) for v in world.messages_by_channel.values())
        assert total == len(world.messages)
