"""Property-based tests on market-simulator invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import CoinUniverse, MarketSimulator, PumpProfile
from repro.utils import ReproConfig

CFG = ReproConfig.tiny()
UNIVERSE = CoinUniverse.generate(CFG)
MARKET = MarketSimulator(UNIVERSE)


@settings(max_examples=30, deadline=None)
@given(
    coin=st.integers(min_value=0, max_value=CFG.n_coins - 1),
    start=st.integers(min_value=100, max_value=20_000),
    length=st.integers(min_value=2, max_value=60),
    offset=st.integers(min_value=0, max_value=30),
)
def test_property_window_consistency(coin, start, length, offset):
    """Any two overlapping queries agree exactly on shared hours."""
    hours_a = np.arange(start, start + length, dtype=float)
    hours_b = np.arange(start + offset, start + offset + length, dtype=float)
    a = MARKET.close_price(np.full(length, coin), hours_a)
    b = MARKET.close_price(np.full(length, coin), hours_b)
    shared_a = hours_a[np.isin(hours_a, hours_b)]
    if len(shared_a):
        idx_a = np.searchsorted(hours_a, shared_a)
        idx_b = np.searchsorted(hours_b, shared_a)
        assert np.allclose(a[idx_a], b[idx_b])


@settings(max_examples=30, deadline=None)
@given(
    coin=st.integers(min_value=0, max_value=CFG.n_coins - 1),
    hour=st.integers(min_value=200, max_value=20_000),
)
def test_property_minute_and_hour_close_agree(coin, hour):
    """The minute series at offset 0 matches the hourly close closely."""
    hourly = MARKET.close_price(np.array([coin]), np.array([float(hour)]))[0]
    minute = MARKET.minute_close(coin, float(hour), [0])[0]
    assert abs(np.log(minute) - np.log(hourly)) < 0.02


@settings(max_examples=20, deadline=None)
@given(
    coin=st.integers(min_value=3, max_value=CFG.n_coins - 1),
    time=st.integers(min_value=1000, max_value=20_000),
    accum=st.floats(min_value=0.02, max_value=0.2),
)
def test_property_overlay_lift_scales_with_accumulation(coin, time, accum):
    """Stronger accumulation always lifts the pre-pump price more."""
    def lifted(accum_log):
        market = MarketSimulator(UNIVERSE)
        profile = PumpProfile(
            time=float(time), accum_log=accum_log, peak_log=np.log(2.0),
            settle_log=-0.02, dump_tau=1.0, vip_times=(), vip_sizes=(),
            volume_peak_log=3.0,
        )

        class _Event:
            pass

        event = _Event()
        event.coin_id = coin
        event.profile = profile
        market.attach_events([event])
        return market.log_close(np.array([coin]), np.array([time - 1.0]))[0]

    assert lifted(accum) > lifted(accum * 0.25)


@settings(max_examples=20, deadline=None)
@given(
    coin=st.integers(min_value=0, max_value=CFG.n_coins - 1),
    start=st.integers(min_value=100, max_value=20_000),
    n=st.integers(min_value=2, max_value=48),
)
def test_property_ohlc_bars_always_valid(coin, start, n):
    bars = MARKET.ohlcv_hourly(coin, start, n)
    opens, high, low, close, volume = bars.T
    assert (low <= np.minimum(opens, close) + 1e-12).all()
    assert (high >= np.maximum(opens, close) - 1e-12).all()
    assert (low > 0).all()
    assert (volume > 0).all()


class TestSeedIsolation:
    def test_different_seeds_give_different_markets(self):
        other = MarketSimulator(UNIVERSE, seed=CFG.seed + 1)
        hours = np.arange(1000.0, 1050.0)
        a = MARKET.close_price(np.full(50, 5), hours)
        b = other.close_price(np.full(50, 5), hours)
        assert not np.allclose(a, b)

    def test_same_seed_reproduces(self):
        again = MarketSimulator(CoinUniverse.generate(CFG))
        hours = np.arange(1000.0, 1050.0)
        assert np.allclose(
            MARKET.close_price(np.full(50, 5), hours),
            again.close_price(np.full(50, 5), hours),
        )
