"""Phase overlays: base-world pin, target anatomy, determinism.

The load-bearing promise (stated in :mod:`repro.simulation.phases`): a
world generated *without* phases is bit-for-bit identical to before the
module existed — phase parameters come from the counter-based hash, so
no RNG stream is perturbed — and within a phase world only the profiled
coins change, only inside their phase windows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.markets import PAIR_SYMBOLS
from repro.simulation import SyntheticWorld, generate_phase_world
from repro.simulation.phases import (
    ACCUMULATION_START,
    DECOY_SCALE,
    DECOYS_PER_EVENT,
    IGNITION_START,
    phase_profiles_for,
)
from repro.sources import SyntheticWorldSource
from repro.utils import ReproConfig

CFG = ReproConfig.tiny().with_(horizon_hours=2600)


@pytest.fixture(scope="module")
def plain_world():
    return SyntheticWorld.generate(CFG)


@pytest.fixture(scope="module")
def phase_world():
    return generate_phase_world(CFG)


@pytest.fixture(scope="module")
def profiles(phase_world):
    return phase_profiles_for(phase_world.events.events,
                              phase_world.coins.n_coins, CFG.seed)


def _grid(market, coins, hours):
    coins = np.asarray(coins, dtype=np.int64)
    hours = np.asarray(hours, dtype=np.float64)
    return (market.log_close(coins[:, None], hours[None, :]),
            market.hourly_volume(coins[:, None], hours[None, :]))


class TestBaseWorldPin:
    def test_plain_generation_is_phase_free(self, plain_world):
        assert not plain_world.market.has_phases

    def test_attach_flips_the_flag(self, profiles):
        world = SyntheticWorld.generate(CFG)
        assert not world.market.has_phases
        world.market.attach_phases(profiles)
        assert world.market.has_phases

    def test_unprofiled_coins_are_bit_identical(self, plain_world,
                                                phase_world, profiles):
        profiled = {p.coin_id for p in profiles}
        spared = [c for c in range(phase_world.coins.n_coins)
                  if c not in profiled][:10]
        assert spared, "phase world profiled every coin; shrink the config"
        hours = np.arange(100.0, 2500.0, 37.0)
        before = _grid(plain_world.market, spared, hours)
        after = _grid(phase_world.market, spared, hours)
        assert np.array_equal(before[0], after[0])
        assert np.array_equal(before[1], after[1])

    def test_targets_untouched_before_accumulation(self, plain_world,
                                                   phase_world, profiles):
        # A coin can carry profiles from several events (decoy picks
        # collide), so "untouched" only holds before its EARLIEST window.
        first_window = {}
        for p in profiles:
            first_window[p.coin_id] = min(first_window.get(p.coin_id,
                                                           np.inf), p.time)
        coin, start = max(first_window.items(), key=lambda kv: kv[1])
        hours = np.arange(100.0, start + ACCUMULATION_START - 2.0, 11.0)
        assert len(hours) > 10
        before = _grid(plain_world.market, [coin], hours)
        after = _grid(phase_world.market, [coin], hours)
        assert np.array_equal(before[0], after[0])
        assert np.array_equal(before[1], after[1])

    def test_worlds_share_events_and_messages(self, plain_world, phase_world):
        assert [e.event_id for e in plain_world.events.events] \
            == [e.event_id for e in phase_world.events.events]
        assert [m.text for m in plain_world.messages] \
            == [m.text for m in phase_world.messages]


def _target_profiles(profiles, phase_world):
    targets = {(e.coin_id, e.time) for e in phase_world.events.events}
    chosen = [p for p in profiles if (p.coin_id, p.time) in targets]
    # Keep events away from the horizon edges and other events' windows.
    return [p for p in chosen
            if 200.0 < p.time < CFG.horizon_hours - 100.0]


class TestTargetAnatomy:
    def test_ignition_volume_is_elevated(self, plain_world, phase_world,
                                         profiles):
        hits = 0
        for profile in _target_profiles(profiles, phase_world)[:8]:
            hours = np.arange(np.floor(profile.time) + IGNITION_START,
                              np.floor(profile.time))
            _, before = _grid(plain_world.market, [profile.coin_id], hours)
            _, after = _grid(phase_world.market, [profile.coin_id], hours)
            hits += after.mean() > before.mean()
        assert hits >= 6

    def test_accumulated_price_premium(self, plain_world, phase_world,
                                       profiles):
        # Measure at 20h out — two thirds through accumulation but still
        # outside the quiet-squeeze window, where the overlay is the pure
        # smoothstep drift (~0.74 of the full run-up).
        hits = 0
        chosen = _target_profiles(profiles, phase_world)[:8]
        for profile in chosen:
            hour = np.floor(profile.time) - 20.0
            before, _ = _grid(plain_world.market, [profile.coin_id], [hour])
            after, _ = _grid(phase_world.market, [profile.coin_id], [hour])
            premium = float(after[0, 0] - before[0, 0])
            hits += premium > 0.5 * profile.runup_log
        assert hits >= len(chosen) - 2

    def test_pre_pump_volatility_is_damped(self, plain_world, phase_world,
                                           profiles):
        hits = 0
        chosen = _target_profiles(profiles, phase_world)[:8]
        for profile in chosen:
            hours = np.arange(np.floor(profile.time) - 16.0,
                              np.floor(profile.time))
            before, _ = _grid(plain_world.market, [profile.coin_id], hours)
            after, _ = _grid(phase_world.market, [profile.coin_id], hours)
            hits += np.diff(after[0]).std() < np.diff(before[0]).std()
        assert hits >= len(chosen) - 2


class TestProfiles:
    def test_deterministic(self, phase_world, profiles):
        again = phase_profiles_for(phase_world.events.events,
                                   phase_world.coins.n_coins, CFG.seed)
        assert again == profiles

    def test_one_target_and_two_decoys_per_event(self, phase_world,
                                                 profiles):
        assert len(profiles) \
            == len(phase_world.events.events) * (1 + DECOYS_PER_EVENT)

    def test_decoys_are_weaker_and_tradable(self, phase_world, profiles):
        targets = {(e.coin_id, e.time) for e in phase_world.events.events}
        decoys = [p for p in profiles if (p.coin_id, p.time) not in targets]
        assert len(decoys) \
            == DECOYS_PER_EVENT * len(phase_world.events.events)
        for decoy in decoys:
            assert decoy.coin_id >= len(PAIR_SYMBOLS)
            # Full-strength run-up starts at 0.05; decoys cap below it.
            assert decoy.runup_log <= DECOY_SCALE * 0.09 < 0.05

    def test_rejects_universe_without_tradable_coins(self, phase_world):
        with pytest.raises(ValueError, match="tradable"):
            phase_profiles_for(phase_world.events.events,
                               len(PAIR_SYMBOLS), CFG.seed)


class TestSourceMarkers:
    def test_fingerprints_differ(self, plain_world, phase_world):
        plain = SyntheticWorldSource(plain_world)
        phased = SyntheticWorldSource(phase_world)
        assert "phases=1" in phased.fingerprint()
        assert "phases" not in plain.fingerprint()
        assert plain.fingerprint() != phased.fingerprint()

    def test_descriptor_records_the_phase_flag(self, plain_world,
                                               phase_world):
        assert SyntheticWorldSource(phase_world).descriptor()["phases"] is True
        assert SyntheticWorldSource(plain_world).descriptor()["phases"] is False
