"""Tests for the §7 BTC forecasting task."""

import numpy as np
import pytest

from repro.forecasting import (
    BTCForecastDataset,
    FORECAST_MODEL_NAMES,
    SNNForecaster,
    aggregate_hourly_sentiment,
    make_forecaster,
    train_forecaster,
)
from repro.nn import Tensor
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig

CFG = ReproConfig.tiny()


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld.generate(CFG)


@pytest.fixture(scope="module")
def sentiment(world):
    return aggregate_hourly_sentiment(world, CFG.forecast_hours, per_hour=3.0)


@pytest.fixture(scope="module")
def dataset(world, sentiment):
    return BTCForecastDataset.build(world, span=24, seq_len=CFG.forecast_seq_len,
                                    n_hours=CFG.forecast_hours, sentiment=sentiment)


class TestSentimentAggregation:
    def test_feature_shape(self, sentiment):
        assert sentiment.features.shape == (CFG.forecast_hours, 6)

    def test_counts_consistent(self, sentiment):
        assert sentiment.n_positive + sentiment.n_negative <= sentiment.n_messages

    def test_sentiment_tracks_mood(self, world, sentiment):
        mood = world.market.market_mood(np.arange(CFG.forecast_hours, dtype=float))
        avg_score = sentiment.features[:, 0]
        active = sentiment.features[:, 3] > 0
        corr = np.corrcoef(mood[active], avg_score[active])[0, 1]
        assert corr > 0.25


class TestDatasetConstruction:
    def test_split_sizes(self, dataset):
        assert len(dataset.train) > len(dataset.test) > 0

    def test_sequences_standardized(self, dataset):
        flat = dataset.train.sequences.reshape(-1, dataset.train.sequences.shape[-1])
        assert np.abs(flat.mean(axis=0)).max() < 1.0
        assert np.isfinite(flat).all()

    def test_labels_are_relative_changes(self, dataset):
        assert np.abs(dataset.train.labels).max() < 1.5

    def test_newest_first_layout(self, world):
        """Position 0 of each window is the hour closest to prediction time."""
        ds = BTCForecastDataset.build(world, span=8, seq_len=16, n_hours=600)
        # The price feature at position 0 of consecutive samples moves like
        # the price series itself (stride 2): verify alignment by comparing
        # sample i's position-0 with sample i+1's position-2.
        seq = ds.train.sequences
        assert np.allclose(seq[1, 2, 0], seq[0, 0, 0], atol=1e-9)

    def test_invalid_span(self, world):
        with pytest.raises(ValueError):
            BTCForecastDataset.build(world, span=0)

    def test_table7_counts(self, dataset):
        table = dataset.table7()
        assert table["messages"] >= table["btc_messages"]
        assert table["train_samples"] == len(dataset.train)


class TestModels:
    @pytest.mark.parametrize("name", FORECAST_MODEL_NAMES)
    def test_forward_shapes(self, name):
        model = make_forecaster(name, seq_len=32, n_features=7, seed=0)
        model.eval()
        x = Tensor(np.random.default_rng(0).normal(size=(4, 32, 7)))
        out = model(x)
        assert out.shape == (4,)

    def test_snn_channel_allocation(self):
        model = make_forecaster("snn", seq_len=32, n_features=7, seed=0)
        assert model.attention.channels[0] == 16   # hour_price
        assert all(c == 2 for c in model.attention.channels[1:])

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_forecaster("prophet", 32, 7)


class TestTraining:
    def test_loss_decreases_and_mae_reasonable(self, dataset):
        model = make_forecaster("snn", dataset.seq_len,
                                dataset.train.sequences.shape[2], seed=0)
        result = train_forecaster(model, dataset, epochs=3, seed=0)
        assert result.losses[-1] < result.losses[0] * 1.2
        naive_mae = float(np.abs(
            dataset.test.base_price * dataset.test.labels
        ).mean())
        assert result.mae < naive_mae * 1.5

    def test_price_only_variant_uses_one_feature(self, dataset):
        model = make_forecaster("snn", dataset.seq_len, 1, seed=0)
        result = train_forecaster(model, dataset, price_only=True, epochs=2)
        assert np.isfinite(result.mae)

    def test_cost_measured(self, dataset):
        model = make_forecaster("snn", dataset.seq_len,
                                dataset.train.sequences.shape[2], seed=0)
        result = train_forecaster(model, dataset, epochs=1)
        assert result.seconds_per_50_batches > 0
