"""Tests for the post-detection baseline and its delay study."""

import numpy as np
import pytest

from repro.postdetect import (
    AnomalyDetector,
    DetectorConfig,
    detection_delay_study,
    evaluate_detector,
)
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig

CFG = ReproConfig.tiny()


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld.generate(CFG)


@pytest.fixture(scope="module")
def detector(world):
    return AnomalyDetector(world.market)


class TestAnomalyDetector:
    def test_invalid_windows_rejected(self, world):
        with pytest.raises(ValueError):
            AnomalyDetector(world.market,
                            DetectorConfig(long_window=5, short_window=10))

    def test_detects_a_real_pump(self, world, detector):
        event = next(e for e in world.events.events if e.exchange_id == 0)
        delay = evaluate_detector(detector, event.coin_id, event.time)
        assert delay is not None
        # Fires within the scan horizon around the pump.
        assert -30 <= delay <= 30

    def test_quiet_coin_rarely_alarms(self, world, detector):
        event_coins = {e.coin_id for e in world.events.events}
        quiet = next(c for c in range(3, world.coins.n_coins)
                     if c not in event_coins)
        alarms = detector.scan(quiet, 3000.0, 120)
        assert len(alarms) <= 3

    def test_alarms_sorted_by_minute(self, world, detector):
        event = next(e for e in world.events.events if e.exchange_id == 0)
        alarms = detector.scan(event.coin_id, event.time - 0.5, 60)
        minutes = [a.minute for a in alarms]
        assert minutes == sorted(minutes)


class TestDelayStudy:
    @pytest.fixture(scope="class")
    def study(self, world):
        return detection_delay_study(world, max_events=25, quiet_hours=8)

    def test_detects_most_events(self, study):
        assert study.n_detected > study.misses

    def test_post_detection_is_too_late(self, study):
        """The paper's motivation: alarms cluster at/after the pump instant,
        far inside the window where the price has already moved."""
        assert study.median_delay() > -10  # no one-hour lead, unlike SNN
        # Most alarms fire after the coin release (delay >= 0 means the
        # spike is already underway).
        late = np.mean([d >= 0 for d in study.delays])
        assert late > 0.5

    def test_false_alarm_floor_is_low(self, study):
        assert study.false_alarm_rate < 5.0
