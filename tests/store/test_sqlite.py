"""SQLiteEventStore unit behavior: appends, queries, durability edges.

No model involved — alerts are hand-built so ranks and windows are
exactly known.  The bit-exactness tests pin the property recovery
relies on: a ranking read back from the store equals the served one
float-for-float.
"""

import sqlite3

import pytest

from repro.core.predictor import CoinScore, Ranking
from repro.serving import Alert, Announcement
from repro.store import (
    NullEventStore,
    SQLiteEventStore,
    STORE_SCHEMA_VERSION,
    StoreError,
)


def ann(channel=1, coin=7, time=10.0) -> Announcement:
    return Announcement(channel_id=channel, coin_id=coin, exchange_id=0,
                        pair="BTC", time=time)


def alert_for(channel=1, coin=7, time=10.0, rank=1,
              n_scores=3) -> Alert:
    """An alert whose announced coin sits at position ``rank``.

    ``rank`` beyond ``n_scores`` (or ``coin=-1``) yields an unranked
    alert, mirroring a miss / an unlabeled probe.
    """
    scores = []
    for position in range(1, n_scores + 1):
        coin_id = coin if position == rank else 1000 + position
        scores.append(CoinScore(coin_id, f"C{position}",
                                1.0 - position * 0.1))
    ranking = Ranking(channel_id=channel, exchange_id=0, pump_time=time,
                      scores=scores)
    return Alert(announcement=ann(channel, coin, time), ranking=ranking,
                 latency_ms=1.25)


@pytest.fixture
def store(tmp_path):
    event_store = SQLiteEventStore(tmp_path / "events.db")
    yield event_store
    event_store.close()


class TestAppendsAndQueries:
    def test_counts_start_empty(self, store):
        assert store.counts() == {
            "announcements": 0, "alerts": 0, "observations": 0,
            "stats_snapshots": 0,
        }

    def test_announcement_append_counts(self, store):
        store.append_announcement(ann())
        store.append_announcement(ann(channel=2))
        assert store.counts()["announcements"] == 2

    def test_alert_round_trip_is_bit_exact(self, store):
        # Awkward floats on purpose: repr-based JSON must survive.
        served = alert_for(time=20801.033333333333)
        store.append_alert(served)
        [loaded] = store.alerts()
        assert loaded.announcement == served.announcement
        assert loaded.latency_ms == served.latency_ms
        assert loaded.ranking.scores == served.ranking.scores
        assert loaded.announced_rank == served.announced_rank

    def test_observation_dedup_on_event_id(self, store):
        assert store.append_observation(ann(), "e1") is True
        assert store.append_observation(ann(), "e1") is False
        assert store.append_observation(ann(), "e2") is True
        assert store.counts()["observations"] == 2

    def test_observations_replay_in_append_order(self, store):
        first, second = ann(time=1.0), ann(channel=2, time=2.0)
        store.append_observation(first, "e1")
        store.append_observation(second, "e2")
        assert store.observations() == [("e1", first), ("e2", second)]

    def test_alert_filters_channel_window_limit(self, store):
        for channel, time in ((1, 10.0), (1, 20.0), (2, 30.0), (1, 40.0)):
            store.append_alert(alert_for(channel=channel, time=time))
        assert len(store.alerts(channel_id=1)) == 3
        assert len(store.alerts(since=20.0)) == 3
        # until is exclusive: [since, until)
        assert len(store.alerts(since=10.0, until=30.0)) == 2
        assert len(store.alerts(limit=2)) == 2
        assert store.alerts(channel_id=2)[0].announcement.time == 30.0

    def test_latest_stats_wins(self, store):
        assert store.latest_stats() is None
        store.append_stats({"alerts": 1})
        store.append_stats({"alerts": 5, "messages": 9})
        assert store.latest_stats() == {"alerts": 5, "messages": 9}

    def test_time_span(self, store):
        assert store.time_span() is None
        store.append_alert(alert_for(time=5.0))
        store.append_alert(alert_for(time=42.0))
        assert store.time_span() == (5.0, 42.0)

    def test_scored_rows_sums_candidates(self, store):
        store.append_alert(alert_for(n_scores=3))
        store.append_alert(alert_for(n_scores=5))
        assert store.scored_rows() == 8


class TestHitRate:
    def test_hits_and_window(self, store):
        store.append_alert(alert_for(time=1.0, rank=1))    # hit @1
        store.append_alert(alert_for(time=2.0, rank=3))    # hit @3
        store.append_alert(alert_for(time=3.0, rank=9,
                                     n_scores=9))          # miss @3
        assert store.hit_rate(3) == (2, 3)
        assert store.hit_rate(1) == (1, 3)
        assert store.hit_rate(3, since=2.0) == (1, 2)

    def test_unlabeled_probes_are_excluded(self, store):
        store.append_alert(alert_for(rank=1))
        store.append_alert(alert_for(coin=-1))   # -1 probe: no ground truth
        assert store.hit_rate(3) == (1, 1)

    def test_k_must_be_positive(self, store):
        with pytest.raises(ValueError):
            store.hit_rate(0)


class TestDurabilityEdges:
    def test_reopen_preserves_everything(self, tmp_path):
        path = tmp_path / "events.db"
        with SQLiteEventStore(path) as store:
            store.append_alert(alert_for())
            store.append_observation(ann(), "e1")
            store.append_stats({"alerts": 1})
        with SQLiteEventStore(path) as reopened:
            assert reopened.counts() == {
                "announcements": 0, "alerts": 1, "observations": 1,
                "stats_snapshots": 1,
            }
            # Dedup survives the reopen: the id is in the table, not RAM.
            assert reopened.append_observation(ann(), "e1") is False

    def test_non_sqlite_file_is_refused(self, tmp_path):
        path = tmp_path / "garbage.db"
        path.write_bytes(b"this is not a database " * 40)
        with pytest.raises(StoreError):
            store = SQLiteEventStore(path)
            store.counts()   # some sqlite versions defer the read error

    def test_schema_version_mismatch_is_refused(self, tmp_path):
        path = tmp_path / "events.db"
        SQLiteEventStore(path).close()
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(STORE_SCHEMA_VERSION + 1),),
            )
        with pytest.raises(StoreError) as exc:
            SQLiteEventStore(path)
        assert "schema version" in str(exc.value)

    def test_tampered_alert_payload_is_a_typed_error(self, tmp_path):
        path = tmp_path / "events.db"
        store = SQLiteEventStore(path)
        store.append_alert(alert_for())
        store.close()
        with sqlite3.connect(path) as conn:
            conn.execute("UPDATE alerts SET payload = '{nope'")
        with SQLiteEventStore(path) as reopened:
            with pytest.raises(StoreError):
                reopened.alerts()


class TestNullStore:
    def test_null_store_is_a_no_op_sink(self):
        store = NullEventStore()
        store.append_announcement(ann())
        store.append_alert(alert_for())
        store.append_stats({"alerts": 1})
        # Without durability every observation is "fresh".
        assert store.append_observation(ann(), "e1") is True
        assert store.append_observation(ann(), "e1") is True
        assert store.observations() == []
        assert store.alerts() == []
        assert store.latest_stats() is None
        assert all(count == 0 for count in store.counts().values())
