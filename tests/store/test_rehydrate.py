"""Crash → rehydrate → bit-identical serving state.

The contract ROADMAP item 2 asks for: a service rebooted onto the same
event log ranks exactly like the one that died — history caches, dedup
window, and the store-reconstructible stats all survive.
"""

import pytest

from repro.serving import Announcement
from repro.store import SQLiteEventStore, rehydrate_service
from tests.store.conftest import announcements_from


def exact(ranking):
    return tuple((s.coin_id, s.probability) for s in ranking.scores)


def probe_for(announcement) -> Announcement:
    """A stateless prediction request issued after the observations."""
    return Announcement(channel_id=announcement.channel_id, coin_id=-1,
                        exchange_id=0, pair="BTC",
                        time=announcement.time + 1.0)


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "events.db"


class TestRehydrate:
    def test_empty_store_is_a_clean_boot(self, st_service, store_path):
        with SQLiteEventStore(store_path) as store:
            recovered = rehydrate_service(st_service(), store)
        assert recovered == {"observations": 0, "alerts": 0,
                             "announcements": 0, "stats_snapshot": False}

    def test_observations_fold_back_bit_identically(self, st_service,
                                                    st_positives,
                                                    store_path):
        streamed = announcements_from(st_positives, 3)
        probe = probe_for(streamed[0])

        # Life before the crash: a service streams observations into the
        # store.  No close()/flush() — kill -9 semantics, the WAL commits
        # per append.
        first_life = st_service(store=SQLiteEventStore(store_path))
        for announcement in streamed:
            assert first_life.observe(announcement) is True
        expected = exact(first_life.rank_one(probe).ranking)

        # A fresh process: new store handle, new service, replay.
        store = SQLiteEventStore(store_path)
        second_life = st_service(store=store)
        recovered = rehydrate_service(second_life, store)
        assert recovered["observations"] == len(streamed)
        assert second_life.history(probe.channel_id) \
            == first_life.history(probe.channel_id)
        assert exact(second_life.rank_one(probe).ranking) == expected

    def test_no_event_is_double_counted(self, st_service, st_positives,
                                        store_path):
        streamed = announcements_from(st_positives, 2)
        first_life = st_service(store=SQLiteEventStore(store_path))
        ids = []
        for announcement in streamed:
            event_id = announcement.event_id()
            assert first_life.observe(announcement, event_id=event_id)
            ids.append(event_id)

        store = SQLiteEventStore(store_path)
        second_life = st_service(store=store)
        rehydrate_service(second_life, store)
        history_after_replay = second_life.history(streamed[0].channel_id)

        # A client retrying its pre-crash observes must hit the dedup
        # window (rehydration seeded it), not grow history again.
        for announcement, event_id in zip(streamed, ids):
            assert second_life.observe(announcement,
                                       event_id=event_id) is False
        assert second_life.history(streamed[0].channel_id) \
            == history_after_replay
        assert store.counts()["observations"] == len(streamed)

    def test_rehydrating_twice_is_idempotent(self, st_service, st_positives,
                                             store_path):
        streamed = announcements_from(st_positives, 2)
        first_life = st_service(store=SQLiteEventStore(store_path))
        for announcement in streamed:
            first_life.observe(announcement)

        store = SQLiteEventStore(store_path)
        service = st_service(store=store)
        rehydrate_service(service, store)
        length = len(service.history(streamed[0].channel_id))
        rehydrate_service(service, store)
        assert len(service.history(streamed[0].channel_id)) == length

    def test_stats_restore_prefers_durable_truth(self, st_service,
                                                 st_positives, store_path):
        requests = announcements_from(st_positives, 3)
        first_life = st_service(store=SQLiteEventStore(store_path))
        alerts = first_life.rank_batch(requests)
        assert len(alerts) == len(requests)
        # A stale snapshot, as if the periodic thread last fired a while
        # before the crash.
        stale = first_life.stats.summary()
        stale["alerts"] = 1
        first_life.store.append_stats(stale)

        store = SQLiteEventStore(store_path)
        second_life = st_service(store=store)
        recovered = rehydrate_service(second_life, store)
        assert recovered["stats_snapshot"] is True
        # Exact, store-backed counters beat the snapshot...
        assert second_life.stats.alerts == len(alerts)
        assert second_life.stats.scored_rows == store.scored_rows()
        # ...while snapshot-only counters carry over verbatim.
        assert second_life.stats.messages == stale["messages"]

    def test_rank_path_persists_both_tables(self, st_service, st_positives,
                                            store_path):
        requests = announcements_from(st_positives, 2)
        service = st_service(store=SQLiteEventStore(store_path))
        served = service.rank_batch(requests)

        with SQLiteEventStore(store_path) as store:
            counts = store.counts()
            assert counts["announcements"] == len(requests)
            assert counts["alerts"] == len(served)
            # Ranked announcements with a known coin also fold + persist
            # as observations (deterministic event id — exactly once).
            assert counts["observations"] == len(requests)
            [stored_first, _] = store.alerts()
            assert exact(stored_first.ranking) == exact(served[0].ranking)
