"""Shared fixtures for the durable-store tests.

One tiny world and one briefly trained artifact per session; tests get a
factory making fresh :class:`PredictionService` instances (optionally
wired to a store) so rehydration can be compared against a clean boot.
"""

from __future__ import annotations

import pytest

from repro.core import (
    TargetCoinPredictor,
    Trainer,
    make_model,
    snn_config_for,
)
from repro.data import collect
from repro.features import FeatureAssembler
from repro.registry import ModelRegistry
from repro.serving import Announcement, PredictionService
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig


@pytest.fixture(scope="session")
def st_world():
    return SyntheticWorld.generate(ReproConfig.tiny())


@pytest.fixture(scope="session")
def st_collection(st_world):
    return collect(st_world)


@pytest.fixture(scope="session")
def st_registry(st_world, st_collection, tmp_path_factory) -> ModelRegistry:
    assembler = FeatureAssembler(st_world, st_collection.dataset)
    assembled = assembler.assemble()
    model = make_model("dnn", snn_config_for(assembled), seed=0)
    Trainer(epochs=1, seed=0).fit(
        model, assembled.train, assembled.validation
    )
    predictor = TargetCoinPredictor(
        st_world, st_collection.dataset, model, assembler
    )
    registry = ModelRegistry(tmp_path_factory.mktemp("store-registry"))
    registry.publish(predictor, "dnn", provenance={"model": "dnn"})
    return registry


@pytest.fixture(scope="session")
def st_positives(st_collection):
    positives = [
        e for e in st_collection.dataset.examples
        if e.label == 1 and e.split == "test"
    ]
    assert len(positives) >= 3
    return positives


def announcements_from(positives, n: int) -> list[Announcement]:
    return [
        Announcement(channel_id=e.channel_id, coin_id=e.coin_id,
                     exchange_id=0, pair="BTC", time=e.time)
        for e in positives[:n]
    ]


@pytest.fixture
def st_service(st_registry, st_world, st_collection):
    """Factory: a fresh service from the session artifact."""

    def make(store=None) -> PredictionService:
        return PredictionService.from_artifact(
            st_registry.resolve("dnn"), st_world, st_collection.dataset,
            store=store,
        )

    return make
