"""Thin setup shim.

The offline sandbox lacks the ``wheel`` package, so PEP 517 editable builds
fail; this file lets ``pip install -e . --no-build-isolation --no-use-pep517``
perform a legacy editable install.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
