"""Benchmark reporting: print paper-vs-ours tables and persist them.

Every experiment benchmark calls :func:`report`, which echoes the table to
stdout (visible with ``pytest -s``) and writes it under
``benchmarks/results/`` so EXPERIMENTS.md can reference a stable artefact.
"""

from __future__ import annotations

import os
import platform
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def machine_context() -> str:
    """One line pinning the hardware/runtime a timing was recorded on."""
    import numpy as np

    return (f"machine: {os.cpu_count()} cpu cores, "
            f"python {platform.python_version()}, numpy {np.__version__}, "
            f"{platform.system().lower()}-{platform.machine()}")


def report(name: str, text: str) -> None:
    """Print and persist one experiment's result block."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
