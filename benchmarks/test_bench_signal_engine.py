"""Signal-engine benchmarks: per-announcement latency and HR@k lift.

Latency: one ``SignalEngine.feature_block`` call scores every candidate
of an announcement through the full six-signal battery — all vectorized
``(n_coins, 72)`` grid math, no per-coin Python loops.  The benchmark
walks every test-split announcement of the session world and records the
per-announcement cost.

Lift: on the phase-aware synthetic benchmark (accumulation/ignition
overlays, 150 events) a message+signal SNN must beat the message-only
SNN at every k — the acceptance bar for the signal subsystem.  The
measured table is persisted so README.md can cite a stable artefact.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks._reporting import machine_context, report
from benchmarks.conftest import run_once
from repro.core import (
    TargetCoinPredictor,
    Trainer,
    evaluate_scores,
    make_model,
    predict_scores,
    snn_config_for,
)
from repro.data import collect
from repro.features import FeatureAssembler
from repro.signals import SignalEngine, SignalRanker
from repro.simulation import generate_phase_world
from repro.sources import SyntheticWorldSource
from repro.utils import ReproConfig

#: The recorded lift configuration: tiny scale, enough events for a
#: decisive test split (31 lists).
LIFT_CONFIG = ReproConfig.tiny(seed=7).with_(n_events=150)
LIFT_KS = (1, 3, 5, 10)


def _test_lists(dataset):
    lists = {}
    for example in dataset.examples:
        if example.split == "test":
            lists.setdefault(example.list_id, []).append(example)
    return [(rows[0].time, np.array([e.coin_id for e in rows]))
            for rows in lists.values()]


def test_signal_engine_latency(benchmark, world, collection):
    engine = SignalEngine(world.market)
    announcements = _test_lists(collection.dataset)
    assert announcements

    def score_all():
        blocks = []
        for announce_time, coins in announcements:
            blocks.append(engine.feature_block(coins, announce_time))
        return blocks

    blocks = run_once(benchmark, score_all)
    seconds = benchmark.stats.stats.mean
    n_scores = sum(b.size for b in blocks)
    per_announcement = seconds / len(announcements)
    report(
        "bench_signal_engine",
        f"scored {len(announcements)} announcements "
        f"({n_scores} signal values) in {seconds:.3f}s — "
        f"{per_announcement * 1e3:.2f} ms/announcement, "
        f"{n_scores / seconds:,.0f} signal values/s\n"
        f"{machine_context()}",
    )
    # Vectorized battery must stay far inside the serving budget.
    assert per_announcement < 0.25


def test_signal_ranker_lift():
    world = generate_phase_world(LIFT_CONFIG)
    source = SyntheticWorldSource(world)
    collection = collect(source)
    dataset = collection.dataset

    started = time.perf_counter()
    heuristic = SignalRanker(source).evaluate(dataset)

    def train_hr(signal_engine):
        assembler = FeatureAssembler(source, dataset,
                                     signal_engine=signal_engine)
        assembled = assembler.assemble()
        model = make_model("snn", snn_config_for(assembled), seed=0)
        Trainer(epochs=8, seed=0).fit(model, assembled.train,
                                      assembled.validation)
        return evaluate_scores(assembled.test,
                               predict_scores(model, assembled.test))

    base = train_hr(None)
    aware = train_hr(SignalEngine.from_source(source))
    elapsed = time.perf_counter() - started

    lines = [
        "phase-aware synthetic benchmark "
        f"(tiny seed={LIFT_CONFIG.seed}, {LIFT_CONFIG.n_events} events, "
        "snn epochs=8 seed=0)",
        f"{'k':>4} {'heuristic':>10} {'message-only':>13} "
        f"{'message+signal':>15} {'lift':>7}",
    ]
    for k in LIFT_KS:
        lines.append(
            f"{k:>4} {heuristic[k]:>10.3f} {base[k]:>13.3f} "
            f"{aware[k]:>15.3f} {aware[k] - base[k]:>+7.3f}"
        )
    lines.append(f"measured in {elapsed:.1f}s — {machine_context()}")
    report("bench_signal_ranker_lift", "\n".join(lines))

    for k in LIFT_KS:
        assert aware[k] >= base[k], f"signal features lost HR@{k}"
    assert aware[1] > base[1], "no HR@1 lift from signal features"
