"""Figure 5 — per-channel scatter of pumped-coin statistics.

Paper: coins pumped by one channel cluster tightly (homogeneity) while
different channels occupy different ranges (heterogeneity), for market
cap, Alexa rank and Reddit subscribers alike.
"""

from benchmarks._reporting import report
from benchmarks.conftest import run_once
from repro.analysis import SCATTER_FEATURES, channel_level_study
from repro.utils import format_table


def test_figure5_channel_scatter(benchmark, world, collection):
    study = run_once(
        benchmark,
        lambda: channel_level_study(world, collection.samples, min_history=4),
    )
    rows = [
        [feature, study.scatters[feature].homogeneity_ratio,
         len(study.scatters[feature].values)]
        for feature in SCATTER_FEATURES
    ]
    table = format_table(
        ["Feature", "within/global spread", "points"], rows,
        title="Figure 5: intra-channel homogeneity (ratio < 1 = homogeneous)",
    )
    table += f"\nchannels plotted: {study.n_channels}"
    report("figure5_channel_scatter", table)

    assert study.n_channels >= 5
    for feature in SCATTER_FEATURES:
        assert study.is_homogeneous(feature, threshold=0.95), feature
