"""Gateway wire overhead and scale-out: HTTP clients vs in-process calls.

ISSUE 5's operational question: what does the JSON-over-HTTP hop cost
relative to calling :class:`PredictionService` directly?  Both paths
score the *same* fixed announcement mix through the same trained ranker;
the in-process baseline runs the calls sequentially in-process, the
gateway path hammers ``POST /v1/rank`` from several threads of
:class:`GatewayClient`s against a real :class:`ThreadingHTTPServer`.

PR 9 adds the scale-out sweep: the real ``repro gateway`` CLI booted as
a worker pool (``--workers``, cross-connection micro-batching enabled),
hammered by 1/4/16/32 keep-alive clients, with bit-for-bit parity
between the pooled wire path and an in-process ``rank_one`` asserted on
every sweep.

Announcements carry the ``coin_id=-1`` sentinel so neither path mutates
channel history — the workload is stationary and every request is
directly comparable.  Reported: req/s plus client-observed p50/p99
latency (``benchmarks/results/bench_gateway_throughput`` and
``bench_gateway_scaling``), stamped with the machine context the numbers
were recorded on.
"""

import os
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

import repro
from benchmarks._reporting import machine_context, report
from benchmarks.conftest import run_once
from repro.core import train_predictor
from repro.data import collect
from repro.gateway import GatewayApp, GatewayClient, serve_in_thread
from repro.registry import ModelRegistry
from repro.serving import Announcement, PredictionService
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig

EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "8"))
CLIENT_THREADS = 4
REQUESTS_PER_CLIENT = 25

# Scale-out sweep: fixed request total so req/s is comparable across
# client counts; 192 divides evenly by every swept concurrency.
WORKER_COUNTS = (1, 4)
CLIENT_COUNTS = (1, 4, 16, 32)
SWEEP_REQUESTS = 192
# The pre-pool recording (PR 6 seed, connection-per-request clients, no
# micro-batching) this sweep's speedup line is measured against.
PRE_POOL_BASELINE_RPS = 60.0


@pytest.fixture(scope="module")
def gateway_setup():
    world = SyntheticWorld.generate(ReproConfig.tiny())
    collection = collect(world)
    predictor = train_predictor(world, collection, epochs=EPOCHS, seed=0)
    positives = [
        e for e in collection.dataset.examples
        if e.label == 1 and e.split == "test"
    ]
    announcements = [
        Announcement(channel_id=e.channel_id, coin_id=-1, exchange_id=0,
                     pair="BTC", time=e.time)
        for e in positives[:8]
    ]
    assert announcements, "tiny world produced no test positives"
    return world, collection, predictor, announcements


def percentiles(latencies_ms):
    return (float(np.percentile(latencies_ms, 50)),
            float(np.percentile(latencies_ms, 99)))


def test_gateway_throughput(benchmark, gateway_setup):
    world, collection, predictor, announcements = gateway_setup
    total = CLIENT_THREADS * REQUESTS_PER_CLIENT
    workload = [announcements[i % len(announcements)] for i in range(total)]

    # -- in-process baseline -------------------------------------------------
    baseline_service = PredictionService(predictor)
    baseline_latencies = []
    started = time.perf_counter()
    for announcement in workload:
        tick = time.perf_counter()
        alert = baseline_service.rank_one(announcement)
        baseline_latencies.append((time.perf_counter() - tick) * 1000.0)
        assert alert.ranking.scores
    baseline_seconds = time.perf_counter() - started
    baseline_rps = total / baseline_seconds

    # -- gateway: concurrent clients over real HTTP --------------------------
    gateway_service = PredictionService(predictor)
    app = GatewayApp(gateway_service)
    server, _thread = serve_in_thread(app)
    try:
        shared_latencies = [[] for _ in range(CLIENT_THREADS)]
        errors: list[BaseException] = []
        start_line = threading.Barrier(CLIENT_THREADS + 1)

        def hammer(worker: int) -> None:
            client = GatewayClient(server.url)
            chunk = workload[worker::CLIENT_THREADS]
            try:
                start_line.wait(timeout=60)
                for announcement in chunk:
                    tick = time.perf_counter()
                    alert = client.rank(announcement)
                    shared_latencies[worker].append(
                        (time.perf_counter() - tick) * 1000.0
                    )
                    assert alert.ranking.scores
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        workers = [
            threading.Thread(target=hammer, args=(index,))
            for index in range(CLIENT_THREADS)
        ]
        for worker in workers:
            worker.start()

        def run_gateway_side():
            start_line.wait(timeout=60)
            for worker in workers:
                worker.join()

        started = time.perf_counter()
        run_once(benchmark, run_gateway_side)
        gateway_seconds = time.perf_counter() - started
    finally:
        server.shutdown()
        server.server_close()

    assert not errors, f"gateway requests failed: {errors[:3]}"
    gateway_latencies = [l for per in shared_latencies for l in per]
    assert len(gateway_latencies) == total
    gateway_rps = total / gateway_seconds

    base_p50, base_p99 = percentiles(baseline_latencies)
    gate_p50, gate_p99 = percentiles(gateway_latencies)
    overhead_ms = gate_p50 - base_p50
    report(
        "bench_gateway_throughput",
        f"{machine_context()}\n"
        f"workload: {total} rank requests, {len(announcements)} distinct "
        f"announcements, {EPOCHS}-epoch snn\n"
        f"in-process PredictionService (sequential): "
        f"{baseline_rps:.0f} req/s, p50 {base_p50:.2f} ms, "
        f"p99 {base_p99:.2f} ms\n"
        f"HTTP gateway ({CLIENT_THREADS} concurrent keep-alive clients): "
        f"{gateway_rps:.0f} req/s, p50 {gate_p50:.2f} ms, "
        f"p99 {gate_p99:.2f} ms\n"
        f"wire + scheduling overhead at p50: {overhead_ms:.2f} ms",
    )
    # Sanity floor only — CI machines vary too much for a speed threshold.
    assert gateway_rps > 0


# ---------------------------------------------------------------------------
# PR 9: worker-pool scale-out sweep over the real CLI.
# ---------------------------------------------------------------------------

def exact(alert):
    return tuple((s.coin_id, s.probability) for s in alert.ranking.scores)


@pytest.fixture(scope="module")
def pool_registry(gateway_setup, tmp_path_factory):
    """The trained predictor published as an artifact the CLI can load."""
    _world, _collection, predictor, _announcements = gateway_setup
    registry = ModelRegistry(tmp_path_factory.mktemp("bench-registry"))
    registry.publish(predictor, "dnn", provenance={"model": "dnn"})
    return registry


def _spawn_pool(registry: ModelRegistry, workers: int) -> tuple:
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_root, env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "gateway",
         "--scale", "tiny", "--seed", "7",
         "--load", "dnn", "--registry", str(registry.root),
         "--host", "127.0.0.1", "--port", "0",
         "--workers", str(workers), "--batch-window-ms", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    url = None
    deadline = time.monotonic() + 600
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            raise AssertionError(f"gateway pool died (exit {proc.poll()})")
        if "gateway listening on http://" in line:
            url = line.split("listening on ", 1)[1].split()[0]
            break
    assert url, "gateway pool never reported its address"
    # Keep the pipe drained so worker boot lines cannot block the pool.
    threading.Thread(target=proc.stdout.read, daemon=True).start()
    probe = GatewayClient(url, timeout=120.0)
    for _ in range(600):
        try:
            if probe.healthz().status == "ok":
                break
        except Exception:
            time.sleep(0.5)
    probe.close()
    return proc, url


def _hammer(url: str, workload, clients: int):
    """Total wall seconds + per-request latencies for one sweep point."""
    latencies = [[] for _ in range(clients)]
    errors: list[BaseException] = []
    start_line = threading.Barrier(clients + 1)

    def run(worker: int) -> None:
        client = GatewayClient(url, timeout=120.0)
        chunk = workload[worker::clients]
        try:
            # Warm before the clock: open the connection AND rank once,
            # so a worker's lazy compiled-plan build never lands inside
            # a measured window.
            client.rank(workload[0])
            start_line.wait(timeout=120)
            for announcement in chunk:
                tick = time.perf_counter()
                alert = client.rank(announcement)
                latencies[worker].append(
                    (time.perf_counter() - tick) * 1000.0)
                assert alert.ranking.scores
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)
        finally:
            client.close()

    threads = [threading.Thread(target=run, args=(i,))
               for i in range(clients)]
    for thread in threads:
        thread.start()
    start_line.wait(timeout=120)
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - started
    assert not errors, f"sweep requests failed: {errors[:3]}"
    flat = [l for per in latencies for l in per]
    assert len(flat) == len(workload)
    return seconds, flat


def test_gateway_scaling(benchmark, gateway_setup, pool_registry):
    _world, _collection, predictor, announcements = gateway_setup
    workload = [announcements[i % len(announcements)]
                for i in range(SWEEP_REQUESTS)]
    expected = exact(PredictionService(predictor).rank_one(announcements[0]))

    lines = [machine_context(),
             f"workload: {SWEEP_REQUESTS} rank requests per sweep point "
             f"(best of 3 passes), {len(announcements)} distinct "
             f"announcements, {EPOCHS}-epoch snn, 2 ms micro-batch window"]
    curve: dict[tuple[int, int], float] = {}

    def sweep() -> None:
        for workers in WORKER_COUNTS:
            proc, url = _spawn_pool(pool_registry, workers)
            try:
                for clients in CLIENT_COUNTS:
                    # Best of three passes: on a busy one-core box a
                    # single pass measures scheduler luck as much as
                    # the gateway (noted in the recorded results).
                    passes = [_hammer(url, workload, clients)
                              for _ in range(3)]
                    seconds, lat = min(passes, key=lambda p: p[0])
                    rps = SWEEP_REQUESTS / seconds
                    curve[(workers, clients)] = rps
                    p50, p99 = percentiles(lat)
                    lines.append(
                        f"workers={workers} clients={clients:>2}: "
                        f"{rps:7.0f} req/s, p50 {p50:6.2f} ms, "
                        f"p99 {p99:7.2f} ms")
                # Coalesced wire rankings stay bit-identical to the
                # in-process engine: same announcement from many
                # connections lands in shared micro-batches.
                parity = GatewayClient(url, timeout=120.0)
                got = [exact(parity.rank(announcements[0]))
                       for _ in range(4)]
                parity.close()
                assert all(g == expected for g in got), \
                    f"pooled ranking diverged from in-process (workers={workers})"
            finally:
                proc.terminate()
                proc.wait(timeout=60)

    run_once(benchmark, sweep)

    pooled = curve[(max(WORKER_COUNTS), 16)]
    solo16 = curve[(1, 16)]
    lines.append(
        f"bit-for-bit parity with in-process rank_one: OK "
        f"(all pooled sweeps)")
    lines.append(
        f"workers=1 x 16 clients vs pre-pool baseline "
        f"({PRE_POOL_BASELINE_RPS:.0f} req/s, PR 6 recording): "
        f"{solo16 / PRE_POOL_BASELINE_RPS:.1f}x")
    lines.append(
        f"workers={max(WORKER_COUNTS)} x 16 clients vs pre-pool baseline: "
        f"{pooled / PRE_POOL_BASELINE_RPS:.1f}x "
        f"(on a 1-core box extra workers only add scheduling overhead; "
        f"the pool pays off once there are cores to saturate)"
        if os.cpu_count() == 1 else
        f"workers={max(WORKER_COUNTS)} x 16 clients vs pre-pool baseline: "
        f"{pooled / PRE_POOL_BASELINE_RPS:.1f}x")
    report("bench_gateway_scaling", "\n".join(lines))
    # Sanity floor only — CI machines vary too much for a speed threshold.
    assert pooled > 0
