"""Gateway wire overhead: concurrent HTTP clients vs in-process calls.

ISSUE 5's operational question: what does the JSON-over-HTTP hop cost
relative to calling :class:`PredictionService` directly?  Both paths
score the *same* fixed announcement mix through the same trained ranker;
the in-process baseline runs the calls sequentially in-process, the
gateway path hammers ``POST /v1/rank`` from several threads of
:class:`GatewayClient`s against a real :class:`ThreadingHTTPServer`.

Announcements carry the ``coin_id=-1`` sentinel so neither path mutates
channel history — the workload is stationary and every request is
directly comparable.  Reported: req/s plus client-observed p50/p99
latency for both paths (``benchmarks/results/bench_gateway_throughput``).
"""

import os
import threading
import time

import numpy as np
import pytest

from benchmarks._reporting import report
from benchmarks.conftest import run_once
from repro.core import train_predictor
from repro.data import collect
from repro.gateway import GatewayApp, GatewayClient, serve_in_thread
from repro.serving import Announcement, PredictionService
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig

EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "8"))
CLIENT_THREADS = 4
REQUESTS_PER_CLIENT = 25


@pytest.fixture(scope="module")
def gateway_setup():
    world = SyntheticWorld.generate(ReproConfig.tiny())
    collection = collect(world)
    predictor = train_predictor(world, collection, epochs=EPOCHS, seed=0)
    positives = [
        e for e in collection.dataset.examples
        if e.label == 1 and e.split == "test"
    ]
    announcements = [
        Announcement(channel_id=e.channel_id, coin_id=-1, exchange_id=0,
                     pair="BTC", time=e.time)
        for e in positives[:8]
    ]
    assert announcements, "tiny world produced no test positives"
    return world, collection, predictor, announcements


def percentiles(latencies_ms):
    return (float(np.percentile(latencies_ms, 50)),
            float(np.percentile(latencies_ms, 99)))


def test_gateway_throughput(benchmark, gateway_setup):
    world, collection, predictor, announcements = gateway_setup
    total = CLIENT_THREADS * REQUESTS_PER_CLIENT
    workload = [announcements[i % len(announcements)] for i in range(total)]

    # -- in-process baseline -------------------------------------------------
    baseline_service = PredictionService(predictor)
    baseline_latencies = []
    started = time.perf_counter()
    for announcement in workload:
        tick = time.perf_counter()
        alert = baseline_service.rank_one(announcement)
        baseline_latencies.append((time.perf_counter() - tick) * 1000.0)
        assert alert.ranking.scores
    baseline_seconds = time.perf_counter() - started
    baseline_rps = total / baseline_seconds

    # -- gateway: concurrent clients over real HTTP --------------------------
    gateway_service = PredictionService(predictor)
    app = GatewayApp(gateway_service)
    server, _thread = serve_in_thread(app)
    try:
        shared_latencies = [[] for _ in range(CLIENT_THREADS)]
        errors: list[BaseException] = []
        start_line = threading.Barrier(CLIENT_THREADS + 1)

        def hammer(worker: int) -> None:
            client = GatewayClient(server.url)
            chunk = workload[worker::CLIENT_THREADS]
            try:
                start_line.wait(timeout=60)
                for announcement in chunk:
                    tick = time.perf_counter()
                    alert = client.rank(announcement)
                    shared_latencies[worker].append(
                        (time.perf_counter() - tick) * 1000.0
                    )
                    assert alert.ranking.scores
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        workers = [
            threading.Thread(target=hammer, args=(index,))
            for index in range(CLIENT_THREADS)
        ]
        for worker in workers:
            worker.start()

        def run_gateway_side():
            start_line.wait(timeout=60)
            for worker in workers:
                worker.join()

        started = time.perf_counter()
        run_once(benchmark, run_gateway_side)
        gateway_seconds = time.perf_counter() - started
    finally:
        server.shutdown()
        server.server_close()

    assert not errors, f"gateway requests failed: {errors[:3]}"
    gateway_latencies = [l for per in shared_latencies for l in per]
    assert len(gateway_latencies) == total
    gateway_rps = total / gateway_seconds

    base_p50, base_p99 = percentiles(baseline_latencies)
    gate_p50, gate_p99 = percentiles(gateway_latencies)
    overhead_ms = gate_p50 - base_p50
    report(
        "bench_gateway_throughput",
        f"workload: {total} rank requests, {len(announcements)} distinct "
        f"announcements, {EPOCHS}-epoch snn\n"
        f"in-process PredictionService (sequential): "
        f"{baseline_rps:.0f} req/s, p50 {base_p50:.2f} ms, "
        f"p99 {base_p99:.2f} ms\n"
        f"HTTP gateway ({CLIENT_THREADS} concurrent clients): "
        f"{gateway_rps:.0f} req/s, p50 {gate_p50:.2f} ms, "
        f"p99 {gate_p99:.2f} ms\n"
        f"wire + scheduling overhead at p50: {overhead_ms:.2f} ms",
    )
    # Sanity floor only — CI machines vary too much for a speed threshold.
    assert gateway_rps > 0
