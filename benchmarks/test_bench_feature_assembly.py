"""Split-assembly wall time — the vectorized FeatureAssembler.

Assembling the model-ready tensors for every (channel, candidate, time)
row used to be an O(rows) Python loop over market queries; it is now
O(lists) batched numpy calls plus an LRU of encoded channel histories.
This benchmark times a full ``FeatureAssembler.assemble()`` over the
session world so the trajectory of that cost is tracked alongside the
serving numbers.
"""

from benchmarks._reporting import report
from benchmarks.conftest import run_once
from repro.features import FeatureAssembler


def test_feature_assembly(benchmark, world, collection):
    def assemble():
        return FeatureAssembler(world, collection.dataset).assemble()

    assembled = run_once(benchmark, assemble)
    rows = len(assembled.train) + len(assembled.validation) + len(assembled.test)
    seconds = benchmark.stats.stats.mean
    report(
        "bench_feature_assembly",
        f"assembled {rows} rows "
        f"({len(assembled.train)}/{len(assembled.validation)}"
        f"/{len(assembled.test)} train/val/test) in {seconds:.3f}s "
        f"({rows / seconds:,.0f} rows/s)",
    )
    assert rows > 0
    # Assembly of the benchmark world must stay well inside interactive time.
    assert seconds < 120.0
