"""Shared fixtures for the experiment benchmarks.

The synthetic world, collection pipeline and assembled features are built
once per session (they are inputs to several tables/figures).  Scale is
controlled by ``REPRO_SCALE`` (``small`` default, ``paper`` for full size).
"""

from __future__ import annotations

import pytest

from repro.core import Trainer
from repro.data import collect
from repro.features import FeatureAssembler
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig, Scale, get_scale


@pytest.fixture(scope="session")
def config() -> ReproConfig:
    return ReproConfig.for_scale(get_scale())


@pytest.fixture(scope="session")
def world(config):
    return SyntheticWorld.generate(config)


@pytest.fixture(scope="session")
def collection(world):
    return collect(world)


@pytest.fixture(scope="session")
def assembled(world, collection):
    return FeatureAssembler(world, collection.dataset).assemble()


@pytest.fixture(scope="session")
def trainer(config):
    """Shared trainer; ``REPRO_BENCH_EPOCHS`` trades accuracy for wall time."""
    import os

    epochs = int(os.environ.get("REPRO_BENCH_EPOCHS", "14"))
    return Trainer(epochs=epochs, lr=3e-3, pos_weight=25.0, seed=config.seed)


@pytest.fixture(scope="session")
def trained_snn(assembled, trainer):
    """One trained SNN shared by the figure benchmarks."""
    from repro.core import make_model, snn_config_for

    model = make_model("snn", snn_config_for(assembled), seed=0)
    trainer.fit(model, assembled.train, assembled.validation)
    return model


def run_once(benchmark, fn):
    """Execute an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
