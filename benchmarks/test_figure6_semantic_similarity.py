"""Figure 6 — semantic similarity of coin pairs under three strategies.

Paper: mean cosine similarity 0.92 (same channel) > 0.80 (pumped set)
> 0.72 (random coins), with the same-channel distribution tightest.
"""

from benchmarks._reporting import report
from benchmarks.conftest import run_once
from repro.analysis import STRATEGIES, semantic_study
from repro.utils import format_table

PAPER_MEANS = {"same_channel": 0.92, "pumped_set": 0.80, "all_coins": 0.72}


def test_figure6_semantic_similarity(benchmark, world, collection):
    study = run_once(
        benchmark,
        lambda: semantic_study(world, collection.samples, n_pairs=500,
                               seed=world.config.seed),
    )
    rows = [
        [name, PAPER_MEANS[name], study.mean(name),
         float(study.similarities[name].std())]
        for name in STRATEGIES
    ]
    table = format_table(
        ["Strategy", "Paper mean", "Our mean", "Our std"], rows,
        title="Figure 6: cosine similarity by pair-selection strategy",
    )
    report("figure6_semantic_similarity", table)

    # The paper's ordering: same-channel > pumped set > random.
    assert study.mean("same_channel") > study.mean("pumped_set") - 0.02
    assert study.mean("pumped_set") > study.mean("all_coins")
    assert study.mean("same_channel") > study.mean("all_coins") + 0.03
