"""Stream-engine throughput and per-announcement ranking latency.

The serving layer's promise is that an always-on monitor keeps up with the
message firehose and still ranks every listed coin the moment a release
appears.  This benchmark replays a tiny world's test period through the
full engine (online detection → sessionization → cached micro-batched
ranking) and reports messages/sec plus p50/p99 scoring latency.

A tiny world is built locally (rather than using the session-scoped
``REPRO_SCALE`` fixtures) so the replay is cheap enough to time as a whole.
"""

import pytest

from benchmarks._reporting import report
from benchmarks.conftest import run_once
from repro.core import train_predictor
from repro.data import collect
from repro.serving import replay_test_period
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig


@pytest.fixture(scope="module")
def tiny_serving_setup():
    world = SyntheticWorld.generate(ReproConfig.tiny())
    collection = collect(world)
    predictor = train_predictor(world, collection, epochs=2, seed=0)
    return world, collection, predictor


def test_stream_throughput(benchmark, tiny_serving_setup):
    world, collection, predictor = tiny_serving_setup
    result = run_once(
        benchmark,
        lambda: replay_test_period(world, collection, predictor),
    )
    stats = result.stats
    assert stats.alerts > 0
    assert stats.throughput() > 0
    report(
        "bench_stream_throughput",
        f"replayed {stats.messages} messages in {stats.wall_seconds:.2f}s "
        f"({stats.throughput():.0f} msg/s)\n"
        f"alerts: {stats.alerts} in {stats.forward_passes} forward passes "
        f"(mean batch {stats.mean_batch_size():.2f})\n"
        f"ranking latency per announcement: "
        f"p50 {stats.latency_ms(50):.1f} ms, p99 {stats.latency_ms(99):.1f} ms\n"
        f"feature-cache hit rate: {stats.cache_hit_rate():.0%}",
    )
    # An always-on monitor must outpace any realistic Telegram firehose.
    assert stats.throughput() > 10.0
    # Well inside the one-hour lead the task guarantees.
    assert stats.latency_ms(99) < 60_000.0
