"""Service cold-start: boot-from-artifact vs retrain-from-scratch.

The registry's reason to exist (ISSUE 3): a serving process should start
in the time it takes to read weights and re-verify the compiled plan, not
the time it takes to train a model.  This benchmark measures both boot
paths to a ready :class:`PredictionService` — identical predictors, since
artifact round-trips are bit-for-bit — and reports the speedup alongside
the existing latency/throughput benches.

A tiny world is built locally (like the throughput benchmark); world
generation and data collection are shared setup and excluded from both
timings, because a long-running serving host amortizes them while
training cost is paid per model.
"""

import os
import time

import pytest

from benchmarks._reporting import report
from benchmarks.conftest import run_once
from repro.core import train_predictor
from repro.data import collect
from repro.registry import save_artifact
from repro.serving import PredictionService
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig

EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "8"))


@pytest.fixture(scope="module")
def startup_setup(tmp_path_factory):
    world = SyntheticWorld.generate(ReproConfig.tiny())
    collection = collect(world)
    artifact_dir = tmp_path_factory.mktemp("bench-artifacts") / "snn"
    save_artifact(
        train_predictor(world, collection, epochs=EPOCHS, seed=0),
        artifact_dir,
    )
    return world, collection, artifact_dir


def test_service_startup(benchmark, startup_setup):
    world, collection, artifact_dir = startup_setup

    def retrain_boot():
        predictor = train_predictor(world, collection, epochs=EPOCHS, seed=0)
        return PredictionService(predictor)

    def artifact_boot():
        return PredictionService.from_artifact(
            artifact_dir, world, collection.dataset
        )

    started = time.perf_counter()
    retrained = retrain_boot()
    retrain_seconds = time.perf_counter() - started

    started = time.perf_counter()
    loaded = run_once(benchmark, artifact_boot)
    artifact_seconds = time.perf_counter() - started

    # Both boots produce a service over the same channel universe.
    channel = next(iter(loaded.predictor._channel_index))
    assert retrained.knows_channel(channel) and loaded.knows_channel(channel)

    speedup = retrain_seconds / artifact_seconds if artifact_seconds else 0.0
    report(
        "bench_service_startup",
        f"service boot, retrain-from-scratch ({EPOCHS} epochs): "
        f"{retrain_seconds:.2f}s\n"
        f"service boot, cold-start-from-artifact: {artifact_seconds*1000:.0f} ms "
        f"(load + integrity check + compiled-plan re-verification)\n"
        f"speedup: {speedup:.1f}x",
    )
    # The whole point of the artifact path: strictly faster than training.
    assert artifact_seconds < retrain_seconds
