"""Prediction latency — the paper's real-time-efficiency claim (§1).

"The entire process of target coin prediction can achieve real-time
efficiency to ensure the timeliness": ranking every listed coin for one
announcement must be far faster than the one-hour lead the task allows.
This benchmark times a full feature-assembly + SNN scoring pass for one
announcement (proper multi-round timing, unlike the one-shot experiment
benchmarks).
"""

import pytest

from benchmarks._reporting import report
from repro.core import TargetCoinPredictor


@pytest.fixture(scope="module")
def predictor(world, collection, trained_snn):
    return TargetCoinPredictor(world, collection.dataset, trained_snn)


def test_prediction_latency(benchmark, collection, predictor):
    event = next(
        e for e in collection.dataset.examples
        if e.label == 1 and e.split == "test"
    )
    ranking = benchmark(
        lambda: predictor.rank(event.channel_id, 0, event.time)
    )
    n = len(ranking.scores)
    mean_s = benchmark.stats.stats.mean
    report(
        "bench_prediction_latency",
        f"ranked {n} candidate coins in {mean_s * 1e3:.1f} ms "
        f"(budget: one hour before pump time)",
    )
    # Real-time: ranking the whole exchange takes well under a minute.
    assert mean_s < 60.0
