"""Training-epoch wall time — the perf trajectory of the fit loop.

The serving benchmarks cover inference; this one covers the other hot
path: one full epoch of mini-batch Adam on the SNN (forward, backward,
in-place gradient accumulation, fused optimizer step) plus the per-epoch
validation pass that runs through the compiled inference plan.

A tiny world is built locally (like the throughput benchmark) so the
timing is dominated by the training loop rather than world generation.
"""

import pytest

from benchmarks._reporting import report
from benchmarks.conftest import run_once
from repro.core import Trainer, make_model, snn_config_for
from repro.data import collect
from repro.features import FeatureAssembler
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig


@pytest.fixture(scope="module")
def tiny_assembled():
    world = SyntheticWorld.generate(ReproConfig.tiny())
    collection = collect(world)
    return FeatureAssembler(world, collection.dataset).assemble()


def test_train_epoch(benchmark, tiny_assembled):
    assembled = tiny_assembled

    def one_epoch():
        model = make_model("snn", snn_config_for(assembled), seed=0)
        trainer = Trainer(epochs=1, seed=0)
        return trainer.fit(model, assembled.train, assembled.validation)

    result = run_once(benchmark, one_epoch)
    rows = len(assembled.train)
    rows_per_s = rows / result.train_seconds if result.train_seconds else 0.0
    report(
        "bench_train_epoch",
        f"one epoch over {rows} train rows in {result.train_seconds:.3f}s "
        f"({rows_per_s:,.0f} rows/s incl. validation HR@k pass)\n"
        f"final train loss: {result.train_losses[-1]:.4f}",
    )
    assert result.train_losses and result.train_seconds > 0
    # Generous budget: an epoch at tiny scale must stay interactive.
    assert result.train_seconds < 120.0
