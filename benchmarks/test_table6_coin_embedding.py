"""Table 6 — coin embedding test (cold-start fix).

Paper HR@k:

    variant  @1    @3    @5    @10   @20   @30
    E2E     .000  .000  .013  .057  .101  .242
    CBOW    .035  .090  .133  .253  .362  .472
    SG      .043  .115  .176  .286  .376  .487
    SNN     .260  .383  .465  .596  .727  .797
    SNN_C   .256  .391  .499  .617  .731  .806
    SNN_S   .277  .414  .513  .623  .739  .823

Shape: E2E (coin-id-only, end-to-end) is by far the worst — the cold-start
problem; word-embedding variants (CBOW/SG) lift it substantially; the
semantic-embedding SNNs at least match the end-to-end SNN.
"""

import numpy as np

from benchmarks._reporting import report
from benchmarks.conftest import run_once
from repro.core import EMBEDDING_VARIANTS, HR_KS, run_coin_embedding_experiment
from repro.utils import format_table

PAPER = {
    "e2e": [.000, .000, .013, .057, .101, .242],
    "cbow": [.035, .090, .133, .253, .362, .472],
    "sg": [.043, .115, .176, .286, .376, .487],
    "snn": [.260, .383, .465, .596, .727, .797],
    "snn_c": [.256, .391, .499, .617, .731, .806],
    "snn_s": [.277, .414, .513, .623, .739, .823],
}


def test_table6_coin_embedding(benchmark, world, assembled, trainer):
    outcome = run_once(
        benchmark,
        lambda: run_coin_embedding_experiment(world, assembled, trainer),
    )
    rows = []
    for name in EMBEDDING_VARIANTS:
        ours = [outcome.hr[name][k] for k in HR_KS]
        rows.append([name.upper()] + [
            f"{p:.3f}/{o:.3f}" for p, o in zip(PAPER[name], ours)
        ])
    table = format_table(
        ["Variant"] + [f"HR@{k} (paper/ours)" for k in HR_KS], rows,
        title="Table 6: coin embedding test",
    )
    report("table6_coin_embedding", table)

    mean = {
        name: float(np.mean([outcome.hr[name][k] for k in HR_KS]))
        for name in EMBEDDING_VARIANTS
    }
    # Cold start cripples the id-only E2E model relative to full models.
    assert mean["e2e"] < mean["snn"], mean
    assert mean["e2e"] < mean["snn_s"], mean
    # Semantic word embeddings lift the id-only model (CBOW/SG vs E2E).
    assert max(mean["cbow"], mean["sg"]) >= mean["e2e"] - 0.02, mean
    # Swapping semantic embeddings into SNN does not hurt it materially.
    assert mean["snn_s"] >= mean["snn"] - 0.08, mean
