"""Tables 2-3 — P&D dataset statistics and example quintuples.

Paper: 1,335 samples / 709 events / 108 channels / 278 coins / 18
exchanges.  Shape: samples > events > channels; tens-to-hundreds of coins;
multiple exchanges; extraction covers the bulk of ground-truth events.
"""

from benchmarks._reporting import report
from benchmarks.conftest import run_once
from repro.simulation.coins import EXCHANGE_NAMES
from repro.utils import format_table, to_timestamp

PAPER = {"samples": 1335, "events": 709, "channels": 108, "coins": 278,
         "exchanges": 18}


def test_table2_dataset_stats(benchmark, world, collection):
    stats = run_once(benchmark, collection.table2)
    truth = world.summary()
    rows = [
        [key, PAPER[key], stats[key], truth.get(key, "-")]
        for key in ("samples", "events", "channels", "coins", "exchanges")
    ]
    table = format_table(
        ["Quantity", "Paper", "Extracted", "Ground truth"], rows,
        title="Table 2: P&D dataset statistics",
    )
    # Table 3: example quintuples.
    names = EXCHANGE_NAMES[: world.config.n_exchanges]
    examples = [
        s.quintuple(world.coins.symbols, names) for s in collection.samples[:6]
    ]
    example_rows = [
        [cid, coin, exch, pair, to_timestamp(int(t))]
        for cid, coin, exch, pair, t in examples
    ]
    table += "\n\n" + format_table(
        ["Channel", "Coin", "Exchange", "Pair", "Timestamp"], example_rows,
        title="Table 3: example quintuples",
    )
    report("table2_dataset_stats", table)

    assert stats["samples"] >= stats["events"] >= stats["channels"] // 2
    assert stats["coins"] > 10
    assert stats["exchanges"] >= 3
    # Extraction recovers most ground-truth events.
    assert stats["events"] > 0.6 * truth["events"]
