"""Table 1 — pump message detection (LR vs RF on TF-IDF).

Paper: LR AUC .988 / P .892 / R .913 / F1 .902; RF AUC .994 / P .901 /
R .939 / F1 .920 at threshold 0.2.  Shape: both near-ceiling AUC, high
recall at the low threshold, RF at least on par with LR.
"""

from benchmarks._reporting import report
from benchmarks.conftest import run_once
from repro.utils import format_table

PAPER = {
    "lr": {"auc": 0.988, "precision": 0.892, "recall": 0.913, "f1": 0.902},
    "rf": {"auc": 0.994, "precision": 0.901, "recall": 0.939, "f1": 0.920},
}


def test_table1_pump_message_detection(benchmark, world, collection):
    from repro.data import ChannelExplorer, run_detection_pipeline
    from repro.simulation.coins import EXCHANGE_NAMES

    explorer = ChannelExplorer(world.channels, world.messages, max_hops=2)
    collected = explorer.collect_messages(
        explorer.explore(world.channels.seed_channel_ids())
    )
    outcome = run_once(
        benchmark,
        lambda: run_detection_pipeline(
            collected,
            coin_symbols=world.coins.symbols,
            exchange_names=EXCHANGE_NAMES[: world.config.n_exchanges],
            seed=world.config.seed,
        ),
    )
    rows = []
    for name in ("lr", "rf"):
        ours = outcome.reports[name]
        paper = PAPER[name]
        rows.append([name.upper(), paper["auc"], ours.auc, paper["precision"],
                     ours.precision, paper["recall"], ours.recall,
                     paper["f1"], ours.f1])
    table = format_table(
        ["Model", "AUC(p)", "AUC", "P(p)", "P", "R(p)", "R", "F1(p)", "F1"],
        rows,
        title="Table 1: pump message detection (p = paper)",
    )
    report("table1_pump_message_detection", table)

    for name in ("lr", "rf"):
        ours = outcome.reports[name]
        assert ours.auc > 0.93, f"{name} AUC degenerate"
        assert ours.recall > 0.85, f"{name} low-threshold recall too low"
        assert ours.f1 > 0.8, f"{name} F1 out of band"
    # Paper shape: RF is the stronger detector (it drives the pipeline).
    assert outcome.reports["rf"].auc >= outcome.reports["lr"].auc - 0.02
