"""Table 5 — target coin prediction, all nine competitors.

Paper HR@k on the test split:

    model   @1    @3    @5    @10   @20   @30
    LR     .156  .269  .322  .449  .608  .662
    RF     .189  .348  .417  .537  .687  .731
    DNN    .225  .278  .383  .498  .626  .727
    LSTM   .207  .339  .423  .551  .648  .696
    BLSTM  .203  .344  .396  .546  .630  .696
    GRU    .229  .339  .414  .529  .626  .714
    BGRU   .163  .335  .401  .555  .678  .709
    TCN    .256  .348  .427  .573  .692  .770
    SNN    .260  .383  .465  .596  .727  .797

Shape asserted here: SNN is the best model overall (highest mean HR and
highest HR@30), sequence modelling beats the sequence-free DNN on average,
and everything crushes the random ranker.  Absolute values differ — the
substrate is a simulator.
"""

import numpy as np

from benchmarks._reporting import report
from benchmarks.conftest import run_once
from repro.core import (
    ALL_MODEL_NAMES,
    HR_KS,
    random_ranker_baseline,
    run_target_coin_experiment,
)
from repro.utils import format_table

PAPER = {
    "lr": [.156, .269, .322, .449, .608, .662],
    "rf": [.189, .348, .417, .537, .687, .731],
    "dnn": [.225, .278, .383, .498, .626, .727],
    "lstm": [.207, .339, .423, .551, .648, .696],
    "bilstm": [.203, .344, .396, .546, .630, .696],
    "gru": [.229, .339, .414, .529, .626, .714],
    "bigru": [.163, .335, .401, .555, .678, .709],
    "tcn": [.256, .348, .427, .573, .692, .770],
    "snn": [.260, .383, .465, .596, .727, .797],
}


def test_table5_target_coin_prediction(benchmark, assembled, trainer):
    outcome = run_once(
        benchmark,
        lambda: run_target_coin_experiment(assembled, ALL_MODEL_NAMES, trainer),
    )
    random_hr = random_ranker_baseline(assembled.test)
    rows = []
    for name in ALL_MODEL_NAMES:
        ours = [outcome.hr[name][k] for k in HR_KS]
        paper = PAPER[name]
        rows.append([name.upper()] + [
            f"{p:.3f}/{o:.3f}" for p, o in zip(paper, ours)
        ] + [f"{outcome.train_seconds[name]:.0f}s"])
    rows.append(["RANDOM"] + [f"-/{random_hr[k]:.3f}" for k in HR_KS] + ["-"])
    table = format_table(
        ["Model"] + [f"HR@{k} (paper/ours)" for k in HR_KS] + ["train"],
        rows, title="Table 5: target coin prediction",
    )
    report("table5_target_coin_prediction", table)

    mean_hr = {
        name: float(np.mean([outcome.hr[name][k] for k in HR_KS]))
        for name in ALL_MODEL_NAMES
    }
    # Everything beats random decisively at HR@10.
    for name in ALL_MODEL_NAMES:
        assert outcome.hr[name][10] > 2.0 * random_hr[10], name
    # Paper shape 1: sequence modelling helps — the best sequence model
    # beats the sequence-free DNN, which beats the classic models on
    # average (on our test split sizes, per-model orderings inside the
    # sequence family are within bootstrap noise; see EXPERIMENTS.md).
    seq_best = max(
        mean_hr[n] for n in ("lstm", "bilstm", "gru", "bigru", "tcn", "snn")
    )
    assert seq_best > mean_hr["dnn"] - 0.01, mean_hr
    assert mean_hr["snn"] > mean_hr["lr"] - 0.05, mean_hr
    assert mean_hr["snn"] > mean_hr["rf"] - 0.05, mean_hr
    # Paper shape 2: SNN is competitive with the best model overall.
    best_mean = max(mean_hr.values())
    assert mean_hr["snn"] >= 0.85 * best_mean, mean_hr
    # Paper shape 3 (advantage D3): SNN is by far the cheapest sequence
    # model to train — the claim that holds most strongly in both worlds.
    rnn_costs = [outcome.train_seconds[n]
                 for n in ("lstm", "bilstm", "gru", "bigru", "tcn")]
    assert outcome.train_seconds["snn"] < 0.7 * min(rnn_costs)
