"""Table 4 — target-coin dataset splits.

Paper: 648/100/200 positives (68.4%/10.5%/21.1%), positive rate ≈0.48%,
temporal boundaries, varying negative counts across splits.
"""

from benchmarks._reporting import report
from benchmarks.conftest import run_once
from repro.utils import format_table

PAPER = {
    "train": {"positives": 648, "total": 107_548},
    "validation": {"positives": 100, "total": 24_766},
    "test": {"positives": 200, "total": 64_299},
    "total": {"positives": 948, "total": 196_613},
}


def test_table4_dataset_split(benchmark, collection):
    table4 = run_once(benchmark, collection.dataset.table4)
    rows = []
    for split in ("train", "validation", "test", "total"):
        ours = table4[split]
        rows.append([
            split, PAPER[split]["positives"], ours["positives"],
            PAPER[split]["total"], ours["total"],
            f"{100 * ours['positives'] / max(ours['total'], 1):.2f}%",
        ])
    table = format_table(
        ["Split", "Pos(paper)", "Pos", "Total(paper)", "Total", "PosRate"],
        rows, title="Table 4: dataset split",
    )
    cold = collection.dataset.cold_start_stats()
    table += (
        f"\ncold-start: {cold['cold_positives']} of {cold['test_positives']} "
        f"test positives never pumped in training"
    )
    report("table4_dataset_split", table)

    total_pos = table4["total"]["positives"]
    assert table4["train"]["positives"] / total_pos > 0.55
    assert 0.05 < table4["validation"]["positives"] / total_pos < 0.25
    assert 0.1 < table4["test"]["positives"] / total_pos < 0.35
    # Positives are a sub-1.5% minority, as in the paper.
    assert table4["total"]["positives"] / table4["total"]["total"] < 0.03
    assert cold["cold_positives"] > 0
