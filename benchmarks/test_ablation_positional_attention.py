"""Ablation — the positional-attention design choices DESIGN.md calls out.

Not a paper table; this isolates the contribution of (a) multi-channel
heads, (b) the optional mapping MLP ``f`` of eq. 3, and (c) the pump-history
length, holding everything else fixed.
"""

from dataclasses import replace

import numpy as np

from benchmarks._reporting import report
from benchmarks.conftest import run_once
from repro.core import (
    HR_KS,
    SNN,
    Trainer,
    evaluate_scores,
    predict_scores,
    snn_config_for,
)
from repro.utils import format_table

VARIANTS = {
    "snn_c8": dict(attention_channels=8),        # paper setting
    "snn_c1": dict(attention_channels=1),        # single-head ablation
    "snn_c8_map": dict(attention_channels=8),    # + mapping MLP f
}


def test_ablation_positional_attention(benchmark, assembled, trainer):
    def run():
        results = {}
        for name, overrides in VARIANTS.items():
            config = snn_config_for(assembled, **overrides)
            rng = np.random.default_rng(0)
            if name.endswith("_map"):
                model = SNN(config, rng)
                # Rebuild the attention with the eq. 3 mapping MLP enabled.
                from repro.nn import PositionalAttention

                model.attention = PositionalAttention(
                    config.seq_len, config.n_seq_features,
                    channels=config.attention_channels, rng=rng,
                    mapping_hidden=16,
                )
                retrain = Trainer(epochs=trainer.epochs, lr=trainer.lr,
                                  pos_weight=trainer.pos_weight, seed=0)
                retrain.fit(model, assembled.train, assembled.validation)
            else:
                model = SNN(config, rng)
                retrain = Trainer(epochs=trainer.epochs, lr=trainer.lr,
                                  pos_weight=trainer.pos_weight, seed=0)
                retrain.fit(model, assembled.train, assembled.validation)
            scores = predict_scores(model, assembled.test)
            results[name] = evaluate_scores(assembled.test, scores, HR_KS)
        return results

    results = run_once(benchmark, run)
    rows = [
        [name] + [f"{results[name][k]:.3f}" for k in HR_KS]
        for name in results
    ]
    table = format_table(["Variant"] + [f"HR@{k}" for k in HR_KS], rows,
                         title="Ablation: positional attention design")
    report("ablation_positional_attention", table)

    mean = {n: float(np.mean(list(results[n].values()))) for n in results}
    # Multi-channel attention should not lose to a single head by much; the
    # paper's D2/D3 rationale predicts it helps.
    assert mean["snn_c8"] >= mean["snn_c1"] - 0.08, mean
    # All variants learn something far above chance.
    for name in results:
        assert results[name][30] > 0.3, name
