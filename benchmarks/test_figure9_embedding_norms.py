"""Figure 9 — ℓ1-norm distributions of coin-id embeddings.

Paper: end-to-end (E2E) embeddings separate positives from negatives on
the *training* set, but cold test positives ("positive2") and untrained
coins look like negatives — the cold-start signature.  SkipGram word
embeddings are consistent across train and test.
"""

import numpy as np

from benchmarks._reporting import report
from benchmarks.conftest import run_once
from repro.core import (
    CoinIdOnlyModel,
    Trainer,
    embedding_l1_norms,
    snn_config_for,
    train_coin_embeddings,
)
from repro.utils import format_table


def test_figure9_embedding_norms(benchmark, world, assembled):
    def run():
        config = snn_config_for(assembled)
        e2e = CoinIdOnlyModel(config.n_coin_ids, config.coin_emb_dim,
                              np.random.default_rng(0))
        Trainer(epochs=10, seed=0).fit(e2e, assembled.train, assembled.validation)
        sg_matrix, _ = train_coin_embeddings(world, mode="skipgram",
                                             dim=config.coin_emb_dim)
        e2e_study = embedding_l1_norms(e2e.coin_embedding.weight.data,
                                       assembled.train, assembled.test)
        sg_study = embedding_l1_norms(sg_matrix, assembled.train, assembled.test)
        return e2e_study, sg_study

    e2e_study, sg_study = run_once(benchmark, run)

    def mean(arr):
        return float(np.mean(arr)) if len(arr) else float("nan")

    rows = []
    for label, study in (("E2E", e2e_study), ("SkipGram", sg_study)):
        rows.append([label, mean(study.train_positive), mean(study.train_negative),
                     mean(study.test_positive_warm), mean(study.test_positive_cold),
                     mean(study.test_untrained)])
    table = format_table(
        ["Embedding", "train pos", "train neg", "test pos warm",
         "test pos cold", "untrained"],
        rows, title="Figure 9: mean l1 norm of coin-id embeddings",
    )
    report("figure9_embedding_norms", table)

    # E2E: training separates positives from negatives ...
    assert mean(e2e_study.train_positive) > 1.2 * mean(e2e_study.train_negative)
    # ... warm test positives keep elevated norms, cold ones look negative.
    assert mean(e2e_study.test_positive_warm) > mean(e2e_study.test_positive_cold)
    # SkipGram norms are consistent between positives and negatives
    # (relative gap far smaller than E2E's).
    sg_gap = abs(mean(sg_study.train_positive) - mean(sg_study.train_negative))
    sg_scale = mean(sg_study.train_negative)
    e2e_gap = abs(mean(e2e_study.train_positive) - mean(e2e_study.train_negative))
    e2e_scale = mean(e2e_study.train_negative)
    assert sg_gap / sg_scale < 0.5 * (e2e_gap / e2e_scale)
