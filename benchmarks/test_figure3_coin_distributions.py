"""Figure 3 — distributions of pumped coins vs rank cohorts.

Paper findings: pumped coins' market cap and Alexa rank resemble the
top-1001..2000 cohort (mid-caps, not the head); Reddit/Twitter footprints
resemble the top-1..1000 cohort (socially loud); ~60.1% re-pump rate.
"""

from benchmarks._reporting import report
from benchmarks.conftest import run_once
from repro.analysis import coin_level_study
from repro.utils import format_table


def test_figure3_coin_distributions(benchmark, world, collection):
    study = run_once(
        benchmark, lambda: coin_level_study(world, collection.samples)
    )
    rows = []
    for feature, groups in study.summaries.items():
        for group, summary in groups.items():
            rows.append([feature, group, summary.q25, summary.median,
                         summary.q75])
    table = format_table(
        ["Feature", "Group", "log q25", "log median", "log q75"], rows,
        title="Figure 3: pumped vs cohort distributions (log scale)",
    )
    table += f"\nre-pump rate: {study.repump_rate:.3f} (paper: 0.601)"
    for feature in study.summaries:
        table += f"\nclosest cohort for {feature}: {study.closest_cohort(feature)}"
    report("figure3_coin_distributions", table)

    caps = study.summaries["market_cap"]
    cohorts = sorted(
        (k for k in caps if k.startswith("top_")),
        key=lambda k: int(k.split("_")[1]),
    )
    head, second = cohorts[0], cohorts[1]
    # Mid-cap targeting: pumped caps sit below the head cohort ...
    assert caps["pumped"].median < caps[head].median
    # ... and the closest cohort is not the head one.
    assert study.closest_cohort("market_cap") != head
    # Social indices: pumped coins look closer to the head cohort than the
    # cap-matched cohort (they are socially loud for their size).
    reddit = study.summaries["reddit_subscribers"]
    assert abs(reddit["pumped"].median - reddit[head].median) < \
        abs(reddit["pumped"].median - reddit[cohorts[-1]].median)
    # Re-pump rate near the paper's 60%.
    assert 0.35 < study.repump_rate < 0.9
