"""Figure 10 — learned positional-attention patterns.

Paper: in target coin prediction, coin_id/volume/price/Twitter features
show skip-correlated attention while market cap and Alexa rank are
temporally proximal; in forecasting, hour_price is strictly proximal,
sentiment intensity features are skip-correlated, and some hour_price
heads develop 24/48-hour periodicity.
"""

import numpy as np

from benchmarks._reporting import report
from benchmarks.conftest import run_once
from repro.analysis import classify_patterns, render_heatmap
from repro.features.sequence import SEQUENCE_NUMERIC_NAMES


def test_figure10_attention_patterns(benchmark, trained_snn):
    heatmaps = run_once(
        benchmark, lambda: trained_snn.attention.attention_by_feature()
    )
    patterns = classify_patterns(heatmaps, proximity_threshold=0.3)
    # Group embedding-dim heads vs numeric-feature heads for reporting.
    emb_dim = trained_snn.config.coin_emb_dim
    names = [f"coin_emb[{i}]" for i in range(emb_dim)] + list(SEQUENCE_NUMERIC_NAMES)
    lines = ["Figure 10(a): per-feature attention patterns"]
    for name, pattern in zip(names, patterns):
        kind = "skip" if pattern.is_skip_correlated else "proximity"
        lines.append(
            f"{name:<24} peak=P{pattern.peak_position + 1:<3} "
            f"mean_pos={pattern.mean_position:.2f} "
            f"mass(P1-P2)={pattern.proximity_mass:.2f} [{kind}]"
        )
    lines.append("\ncoin_emb[0] heads heatmap:")
    lines.append(render_heatmap(heatmaps[0]))
    report("figure10_attention_patterns", "\n".join(lines))

    # After training, attention is no longer uniform ...
    uniform = 1.0 / trained_snn.config.seq_len
    peak_masses = [p.heatmap.max() for p in patterns]
    assert max(peak_masses) > 2.0 * uniform
    # ... and at least one feature attends beyond the newest position
    # (skip-correlation, the module's raison d'etre).
    assert any(p.peak_position >= 2 for p in patterns)
