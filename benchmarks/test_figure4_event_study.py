"""Figure 4 — the observational event study.

Paper: (a) price climbs for tens of hours into the pump, spikes, dumps;
(b) frequent trading begins ≈57h before the pump; (c) the window return
peaks at x = 60 (≈9.5%) while random coins sit at ≈0; (d) VIP pre-pumps
are visible as short volume bursts hours before the pump.
Also §4.2: Binance hosts the majority of events, with ≈2.25 channels per
Binance event.
"""

import numpy as np

from benchmarks._reporting import report
from benchmarks.conftest import run_once
from repro.analysis import event_study, volume_onset_hour
from repro.utils import format_table

PAPER_RETURN_AT_60 = 0.095
PAPER_EXCHANGE_SHARE = {"Binance": 0.628, "Yobit": 0.206, "Hotbit": 0.087,
                        "Kucoin": 0.030}


def test_figure4_event_study(benchmark, world):
    study = run_once(benchmark, lambda: event_study(world))
    rows = [
        [f"x={x}", PAPER_RETURN_AT_60 if x == 60 else "-",
         study.window_returns_pumped[x], study.window_returns_random[x]]
        for x in sorted(study.window_returns_pumped)
    ]
    table = format_table(
        ["Window", "Paper(pumped@60)", "Pumped", "Random"], rows,
        title="Figure 4(c): average return in (x+1,1] windows",
    )
    share_rows = [
        [name, PAPER_EXCHANGE_SHARE.get(name, "-"), share]
        for name, share in study.exchange_share.items()
    ]
    table += "\n\n" + format_table(
        ["Exchange", "Paper", "Ours"], share_rows,
        title="Event distribution across exchanges (§4.2)",
    )
    table += (
        f"\navg channels per Binance event: {study.avg_channels_binance:.2f} "
        f"(paper: 2.25)"
        f"\nvolume onset: ~{volume_onset_hour(study):.0f}h before pump "
        f"(paper: ~57h)"
    )
    report("figure4_event_study", table)

    # (a) price peaks at the pump and rose into it.
    grid = study.minute_grid
    peak_minute = grid[int(np.argmax(study.avg_price_curve))]
    assert -5 <= peak_minute <= 60
    at = lambda m: study.avg_price_curve[np.argmin(np.abs(grid - m))]
    assert at(-60) > at(-71 * 60)
    # (b) volume onset tens of hours out.
    assert volume_onset_hour(study) > 20
    # (c) pumped returns peak in the 36-72h window band and dwarf random.
    peak_x = study.peak_window()
    assert peak_x in (36, 48, 60, 72)
    assert study.window_returns_pumped[60] > 0.04
    assert abs(study.window_returns_random[60]) < 0.03
    # (d) a pre-pump example exists.
    assert "volume" in study.prepump_example
    # Exchange drift: Binance dominates; coordination is multi-channel.
    assert study.exchange_share["Binance"] > 0.4
    assert study.avg_channels_binance > 1.3
