"""Table 7 — BTC price forecasting dataset statistics.

Paper: 2,799,669 messages / 229,595 BTC messages / 88,512 positive /
54,175 negative / 15,856 train / 3,964 test.  Shape: BTC subset is a
fraction of all messages; positives outnumber negatives (crypto chatter
skews optimistic); train ≈ 4x test.
"""

import pytest

from benchmarks._reporting import report
from benchmarks.conftest import run_once
from repro.forecasting import BTCForecastDataset, aggregate_hourly_sentiment
from repro.utils import format_table

PAPER = {
    "messages": 2_799_669,
    "btc_messages": 229_595,
    "positive_messages": 88_512,
    "negative_messages": 54_175,
    "train_samples": 15_856,
    "test_samples": 3_964,
}


@pytest.fixture(scope="session")
def forecast_sentiment(world):
    return aggregate_hourly_sentiment(world, world.config.forecast_hours,
                                      per_hour=6.0)


@pytest.fixture(scope="session")
def forecast_dataset_48(world, forecast_sentiment):
    return BTCForecastDataset.build(world, span=48,
                                    sentiment=forecast_sentiment)


def test_table7_btc_dataset(benchmark, forecast_dataset_48):
    table7 = run_once(benchmark, forecast_dataset_48.table7)
    rows = [[key, PAPER[key], table7[key]] for key in PAPER]
    table = format_table(["Quantity", "Paper", "Ours"], rows,
                         title="Table 7: BTC forecasting dataset")
    report("table7_btc_dataset", table)

    assert table7["btc_messages"] <= table7["messages"]
    assert table7["btc_messages"] > 0.3 * table7["messages"] * 0.1
    assert table7["positive_messages"] + table7["negative_messages"] <= \
        table7["messages"]
    assert table7["train_samples"] > 2 * table7["test_samples"]
