"""Table 8 — BTC price forecasting: MAE(P) vs MAE(P+T) and training cost.

Paper (48h span): sentiment features improve every RNN and SNN; SNN has
the best MAE(P+T) (756.90) and by far the lowest training cost (0.36s per
50 batches vs 2.66-5.41s).  At 96h the sentiment improvements grow.
Shape asserted: sentiment helps the majority of models and SNN in
particular; SNN is the cheapest to train by a wide margin; SNN's P+T MAE
is competitive with the best competitor.
"""

import numpy as np
import pytest

from benchmarks._reporting import report
from benchmarks.conftest import run_once
from repro.forecasting import (
    BTCForecastDataset,
    FORECAST_MODEL_NAMES,
    run_forecasting_experiment,
)
from repro.utils import format_table

PAPER_48 = {
    "lstm": (871.21, 848.29), "bilstm": (810.87, 785.66),
    "gru": (851.30, 814.68), "bigru": (812.45, 791.89),
    "tcn": (820.32, 860.75), "snn": (805.49, 756.90),
}
PAPER_96 = {
    "lstm": (1144.23, 1118.84), "bilstm": (1078.13, 1043.70),
    "gru": (1126.37, 1088.25), "bigru": (1049.85, 1027.45),
    "tcn": (1059.36, 1048.53), "snn": (1051.57, 964.27),
}
PAPER_COST = {"lstm": 4.68, "bilstm": 5.41, "gru": 4.11, "bigru": 4.61,
              "tcn": 2.66, "snn": 0.36}


@pytest.fixture(scope="module")
def sentiment(world):
    from repro.forecasting import aggregate_hourly_sentiment

    return aggregate_hourly_sentiment(world, world.config.forecast_hours,
                                      per_hour=6.0)


@pytest.mark.parametrize("span,paper", [(48, PAPER_48), (96, PAPER_96)])
def test_table8_price_forecasting(benchmark, world, sentiment, span, paper):
    import os

    epochs = int(os.environ.get("REPRO_FORECAST_EPOCHS", "6"))
    dataset = BTCForecastDataset.build(world, span=span, sentiment=sentiment)
    experiment = run_once(
        benchmark,
        lambda: run_forecasting_experiment(
            world, span=span, model_names=FORECAST_MODEL_NAMES,
            epochs=epochs, dataset=dataset,
        ),
    )
    rows = []
    for name in FORECAST_MODEL_NAMES:
        rows.append([
            name.upper(),
            paper[name][0], round(experiment.mae_price[name], 2),
            paper[name][1], round(experiment.mae_price_telegram[name], 2),
            round(experiment.improvement(name), 2),
            PAPER_COST[name], round(experiment.cost[name], 2),
        ])
    table = format_table(
        ["Model", "MAE(P)p", "MAE(P)", "MAE(P+T)p", "MAE(P+T)", "Impr",
         "Cost(p)", "Cost"],
        rows, title=f"Table 8: BTC forecasting, span={span}h",
    )
    # Figure 10(b)/(c): attention patterns of the trained forecasting SNN.
    from repro.analysis import classify_patterns, dominant_period
    from repro.forecasting.dataset import SEQUENCE_FEATURE_NAMES

    snn = experiment.models["snn"]
    heatmaps = snn.attention.attention_by_feature()
    patterns = classify_patterns(heatmaps, proximity_positions=20,
                                 proximity_threshold=0.3)
    table += "\n\nFigure 10(b): attention patterns (P1 = most recent hour)"
    for name, pattern in zip(SEQUENCE_FEATURE_NAMES, patterns):
        kind = "skip" if pattern.is_skip_correlated else "proximity"
        period = dominant_period(pattern.heatmap.mean(axis=0))
        table += (
            f"\n  {name:<16} peak=P{pattern.peak_position + 1:<4} "
            f"mass(P1-P20)={pattern.proximity_mass:.2f} [{kind}]"
            + (f" dominant_period~{period:.0f}" if period else "")
        )
    report(f"table8_price_forecasting_{span}h", table)

    # The price feature concentrates attention; it is never uniform.
    price_pattern = patterns[0]
    assert price_pattern.heatmap.max() > 2.0 / dataset.seq_len

    improvements = [experiment.improvement(n) for n in FORECAST_MODEL_NAMES]
    # Sentiment helps the majority of models, and SNN specifically.
    assert sum(1 for i in improvements if i > 0) >= len(improvements) // 2
    assert experiment.improvement("snn") > 0
    # SNN trains far cheaper than every recurrent model (paper: ~10x).
    rnn_costs = [experiment.cost[n] for n in ("lstm", "bilstm", "gru", "bigru")]
    assert experiment.cost["snn"] < 0.5 * min(rnn_costs)
    # SNN's sentiment-enhanced MAE is competitive with the field's best.
    best = min(experiment.mae_price_telegram.values())
    assert experiment.mae_price_telegram["snn"] <= 1.25 * best
